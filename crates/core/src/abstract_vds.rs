//! The abstract-timing VDS engine.
//!
//! Implements the paper's execution models exactly at the level its
//! equations live at: rounds of length `t`, context switches `c`,
//! comparisons `t'`, SMT co-run stretch `α`, checkpoint interval `s`.
//! Faults are stochastic (or placed) state corruptions; recovery follows
//! the §3.1 / §3.2 / §4 / §5 schemes including every edge in the
//! Figures 2–3 flow charts: fault during retry, fault during
//! roll-forward, resort to rollback, fail-safe shutdown.
//!
//! The integral nature of rounds is respected: a roll-forward of `i/4`
//! rounds really advances `⌊i/4⌋` (clamped at the checkpoint horizon) —
//! the paper explicitly waves this away ("we do not consider the detail
//! that i/2 may not be an integer"); validation tests account for it.

use crate::config::{FaultModel, Scheme, Victim};
use crate::report::RunReport;
use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng};
use vds_analytic::multithread::alpha_k;
use vds_analytic::Params;
use vds_desim::time::SimTime;
use vds_desim::trace::{SpanKind, Timeline};
use vds_obs::journal::{Action as JournalAction, RoundEntry, Verdict as JournalVerdict};
use vds_obs::{digest_words128, obs_event, NoopRecorder, Record, Recorder};
use vds_predictor::{FaultPredictor, Suspect};

/// Configuration of an abstract VDS run.
#[derive(Debug, Clone)]
pub struct AbstractConfig {
    /// Timing parameters (the paper's `t`, `c`, `t'`, `α`, `s`).
    pub params: Params,
    /// Recovery scheme.
    pub scheme: Scheme,
    /// Probability of picking the fault-free state/version correctly in
    /// the probabilistic/predictive schemes when no predictor and no
    /// crash evidence is available (the paper's `p`).
    pub p_correct: f64,
    /// Time to write a checkpoint (the paper's equations ignore it; keep
    /// 0 to reproduce them, raise it for the E12 trade-off study).
    pub checkpoint_cost: f64,
    /// Time to restore state from the checkpoint on rollback.
    pub restore_cost: f64,
    /// Record a [`Timeline`] (Figure 1) — costs memory, off by default.
    pub record_timeline: bool,
    /// Fail-safe shutdown after this many consecutive rollbacks without
    /// progress (the flow charts' terminal state).
    pub max_consecutive_rollbacks: u32,
}

impl AbstractConfig {
    /// Defaults: paper-faithful zero overheads beyond `params`,
    /// `p = 0.5`, no timeline.
    pub fn new(params: Params, scheme: Scheme) -> Self {
        AbstractConfig {
            params,
            scheme,
            p_correct: 0.5,
            checkpoint_cost: 0.0,
            restore_cost: 0.0,
            record_timeline: false,
            max_consecutive_rollbacks: 32,
        }
    }
}

/// Measured facts about a single recovery incident (for per-incident
/// validation against Eqs. 6–12).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Incident {
    /// Round at which the fault was detected.
    pub i: u32,
    /// Wall time of the recovery (retry + roll-forward + vote).
    pub recovery_time: f64,
    /// Rounds of roll-forward progress that survived.
    pub progress: u32,
    /// Whether the majority vote succeeded (false ⇒ rollback).
    pub vote_ok: bool,
}

struct Engine<'a, R> {
    cfg: &'a AbstractConfig,
    rng: SmallRng,
    clock: f64,
    /// Confirmed rounds since the last checkpoint (the paper's `i − 1`
    /// at detection time).
    round_in_interval: u32,
    corrupt: [bool; 2],
    crash: Option<Victim>,
    consecutive_rollbacks: u32,
    oneshot_fired: bool,
    timeline: Timeline,
    report: RunReport,
    rec: R,
    /// Flight-recorder entry for the round in flight (see the micro
    /// engine's equivalent): finalised by [`Engine::journal_finish`].
    pending: Option<RoundEntry>,
    /// Lane-local ordinal of the next fault-bearing journal entry — the
    /// forensics `fault_id` (stable across reruns because entries are
    /// journalled in execution order).
    next_fault_id: u64,
}

impl<'a, R: Record> Engine<'a, R> {
    fn with_recorder(cfg: &'a AbstractConfig, seed: u64, rec: R) -> Self {
        Engine {
            cfg,
            rng: SmallRng::seed_from_u64(seed),
            clock: 0.0,
            round_in_interval: 0,
            corrupt: [false, false],
            crash: None,
            consecutive_rollbacks: 0,
            oneshot_fired: false,
            timeline: Timeline::new(),
            report: RunReport::default(),
            rec,
            pending: None,
            next_fault_id: 0,
        }
    }

    /// Stash the flight-recorder entry for round `i`. The abstract engine
    /// has no architectural state to hash, so per-version digests are
    /// synthesised from the versions' logical round state (round,
    /// committed count, corruption) — fault-free versions agree, a
    /// corrupted version diverges, exactly like the micro digests.
    fn journal_stash(&mut self, i: u32, verdict: JournalVerdict, fault: Option<String>) {
        if !self.rec.journal_enabled() {
            return;
        }
        let committed = self.report.committed_rounds;
        let dig = |slot: u32, corrupt: bool| {
            digest_words128(&[
                i,
                committed as u32,
                (committed >> 32) as u32,
                if corrupt { slot + 1 } else { 0 },
            ])
        };
        let sched = if self.is_smt() {
            "coschedule[v1,v2]"
        } else {
            "alternate[v1,v2]"
        };
        let fault_id = fault.as_ref().map(|_| {
            let id = self.next_fault_id;
            self.next_fault_id += 1;
            id
        });
        self.pending = Some(RoundEntry {
            seq: 0,
            lane: 0,
            round: u64::from(i),
            committed: 0,
            sim_time: self.clock,
            d1: dig(0, self.corrupt[0]),
            d2: dig(1, self.corrupt[1]),
            verdict,
            sched: sched.to_string(),
            action: JournalAction::Commit,
            rollforward: 0,
            fault,
            fault_id,
            fault_outcome: None,
        });
    }

    /// Upgrade the pending journal entry's action.
    fn journal_action(&mut self, action: JournalAction, rollforward: u32) {
        if let Some(p) = self.pending.as_mut() {
            p.action = action;
            p.rollforward = rollforward;
        }
    }

    /// Finalise and push the pending journal entry with the post-action
    /// committed-round count.
    fn journal_finish(&mut self) {
        if let Some(mut p) = self.pending.take() {
            p.committed = self.report.committed_rounds;
            self.rec.journal_push(p);
        }
    }

    /// Record a timeline span. The label is a closure so hot call sites
    /// don't pay for `format!` allocations when no timeline is kept —
    /// it runs only when `record_timeline` is set.
    fn span(&mut self, lane: usize, dur: f64, kind: SpanKind, label: impl FnOnce() -> String) {
        if self.cfg.record_timeline {
            self.timeline.record(
                lane,
                SimTime::from_secs(self.clock),
                SimTime::from_secs(self.clock + dur),
                kind,
                label(),
            );
        }
    }

    fn is_smt(&self) -> bool {
        self.cfg.scheme != Scheme::Conventional
    }

    /// Debit rolled-back rounds from the committed count. An underflow
    /// here means the recovery paths double-billed a rollback; clamping
    /// would silently corrupt every downstream aggregate (journal
    /// committed counts, sweep cells, campaign summaries), so it is
    /// logged as an error and asserted in debug builds.
    fn debit_committed(&mut self, lost: u64, cause: &str) {
        match self.report.committed_rounds.checked_sub(lost) {
            Some(v) => self.report.committed_rounds = v,
            None => {
                debug_assert!(
                    false,
                    "committed_rounds underflow: {} - {lost} during {cause}",
                    self.report.committed_rounds
                );
                vds_obs::log_error!(
                    "core.abstract",
                    "committed_rounds underflow: {} - {} during {}",
                    self.report.committed_rounds,
                    lost,
                    cause
                );
                self.report.committed_rounds = 0;
            }
        }
    }

    /// Per-version-round corruption draw under the configured model.
    fn draw_fault(&mut self, fm: &FaultModel, victim: Victim, round_1based: u32) -> bool {
        match *fm {
            FaultModel::None => false,
            FaultModel::OneShot { round, victim: v } => {
                if !self.oneshot_fired && round == round_1based && v == victim {
                    self.oneshot_fired = true;
                    true
                } else {
                    false
                }
            }
            FaultModel::PerRound { q } => self.rng.gen::<f64>() < q,
            FaultModel::PerRoundWithCrashes { q, .. } => self.rng.gen::<f64>() < q,
            FaultModel::Mission { q, .. } => self.rng.gen::<f64>() < q,
        }
    }

    /// Classify a drawn corruption: silent, crash (detected with
    /// evidence) or whole-processor stop.
    fn classify_corruption(&mut self, fm: &FaultModel, victim: Victim) -> bool {
        match *fm {
            FaultModel::PerRoundWithCrashes { crash_fraction, .. } => {
                if self.rng.gen::<f64>() < crash_fraction {
                    self.crash = Some(victim);
                }
                false
            }
            FaultModel::Mission {
                crash_fraction,
                stop_fraction,
                ..
            } => {
                let r = self.rng.gen::<f64>();
                if r < stop_fraction {
                    true // processor stop
                } else {
                    if r < stop_fraction + crash_fraction {
                        self.crash = Some(victim);
                    }
                    false
                }
            }
            _ => false,
        }
    }

    /// Corruption probability over `n` executed rounds of one version
    /// during recovery phases.
    fn recovery_corruption(&mut self, fm: &FaultModel, rounds: u32) -> bool {
        let q = match *fm {
            FaultModel::PerRound { q }
            | FaultModel::PerRoundWithCrashes { q, .. }
            | FaultModel::Mission { q, .. } => q,
            _ => return false,
        };
        if rounds == 0 || q == 0.0 {
            return false;
        }
        let p_any = 1.0 - (1.0 - q).powi(rounds as i32);
        self.rng.gen::<f64>() < p_any
    }

    /// Execute one normal-processing round pair plus comparison.
    /// Returns `Some(i)` when a mismatch (or crash) is detected at round
    /// `i`, `None` on success.
    fn normal_round(&mut self, fm: &FaultModel) -> Option<u32> {
        let p = &self.cfg.params;
        let i = self.round_in_interval + 1;
        let start = self.clock;
        if self.is_smt() {
            let dur = 2.0 * p.alpha * p.t;
            self.span(0, dur, SpanKind::Round, || format!("V1 R{i}"));
            self.span(1, dur, SpanKind::Round, || format!("V2 R{i}"));
            self.clock += dur;
        } else {
            self.span(0, p.t, SpanKind::Round, || format!("V1 R{i}"));
            self.clock += p.t;
            self.span(0, p.c, SpanKind::ContextSwitch, String::new);
            self.clock += p.c;
            self.span(0, p.t, SpanKind::Round, || format!("V2 R{i}"));
            self.clock += p.t;
            self.span(0, p.c, SpanKind::ContextSwitch, String::new);
            self.clock += p.c;
        }
        // fault draws: each version-round is exposed independently
        let mut stopped = false;
        let mut drawn: Vec<Victim> = Vec::new();
        for v in [Victim::V1, Victim::V2] {
            if self.draw_fault(fm, v, i) {
                self.report.faults_injected += 1;
                self.corrupt[v.index()] = true;
                stopped |= self.classify_corruption(fm, v);
                drawn.push(v);
            }
        }
        self.span(0, p.t_cmp, SpanKind::Compare, || "cmp".to_string());
        self.clock += p.t_cmp;
        self.report.time_normal += self.clock - start;

        // canonical fault note for the flight recorder, e.g.
        // `corrupt@v1`, `crash@v2`, `stop@v1+v2`
        let fault_note = if drawn.is_empty() || !self.rec.journal_enabled() {
            None
        } else {
            let kind = if stopped {
                "stop"
            } else if self.crash.is_some() {
                "crash"
            } else {
                "corrupt"
            };
            let victims: Vec<String> = drawn
                .iter()
                .map(|v| format!("v{}", v.index() + 1))
                .collect();
            Some(format!("{kind}@{}", victims.join("+")))
        };

        // every corruption drawn in a normal round is caught by this
        // round's own comparison (or the stop watchdog): zero-latency
        // detection in both the round and sim-time denominations
        self.report.faults_detected += drawn.len() as u64;

        if stopped {
            self.journal_stash(i, JournalVerdict::Hang, fault_note);
            // the whole processor stopped: all volatile state is gone;
            // only the stable-storage checkpoint survives
            self.report.processor_stops += 1;
            self.report.detections += 1;
            self.report.rollbacks += 1;
            let lost = u64::from(self.round_in_interval);
            self.debit_committed(lost, "processor stop");
            self.round_in_interval = 0;
            self.corrupt = [false, false];
            self.crash = None;
            self.clock += self.cfg.restore_cost;
            self.consecutive_rollbacks += 1;
            obs_event!(
                self.rec, self.clock, "vds", "processor_stop",
                "round" => u64::from(i), "rounds_lost" => lost,
            );
            if self.consecutive_rollbacks > self.cfg.max_consecutive_rollbacks {
                self.report.shutdown = true;
                obs_event!(self.rec, self.clock, "vds", "shutdown");
                self.journal_action(JournalAction::Shutdown, 0);
            } else {
                self.journal_action(JournalAction::Rollback, 0);
            }
            return None;
        }

        if self.corrupt[0] || self.corrupt[1] || self.crash.is_some() {
            self.report.detections += 1;
            let verdict = if self.crash.is_some() {
                JournalVerdict::Trap
            } else {
                JournalVerdict::Mismatch
            };
            self.journal_stash(i, verdict, fault_note);
            obs_event!(
                self.rec, self.clock, "vds", "detect",
                "round" => u64::from(i),
                "v1_corrupt" => self.corrupt[0],
                "v2_corrupt" => self.corrupt[1],
                "crash_evidence" => self.crash.is_some(),
            );
            Some(i)
        } else {
            self.round_in_interval = i;
            self.report.committed_rounds += 1;
            self.consecutive_rollbacks = 0;
            self.journal_stash(i, JournalVerdict::Match, fault_note);
            obs_event!(
                self.rec, self.clock, "vds", "round",
                "round" => u64::from(i), "comparison" => "match",
            );
            None
        }
    }

    fn take_checkpoint(&mut self) {
        let start = self.clock;
        self.span(0, self.cfg.checkpoint_cost, SpanKind::Checkpoint, || {
            "ckpt".to_string()
        });
        self.clock += self.cfg.checkpoint_cost;
        self.report.time_checkpoint += self.clock - start;
        self.report.checkpoints += 1;
        self.round_in_interval = 0;
        obs_event!(
            self.rec, self.clock, "vds", "checkpoint",
            "number" => self.report.checkpoints,
        );
    }

    /// Recovery wall time of the configured scheme for a fault at round
    /// `i` (the retry + roll-forward window plus the vote).
    fn recovery_time(&self, i: u32) -> f64 {
        let p = &self.cfg.params;
        let i_f = f64::from(i);
        match self.cfg.scheme {
            Scheme::Conventional => i_f * p.t + 2.0 * p.t_cmp,
            Scheme::SmtDeterministic | Scheme::SmtProbabilistic | Scheme::SmtPredictive => {
                2.0 * i_f * p.alpha * p.t + 2.0 * p.t_cmp
            }
            Scheme::SmtBoosted3 => i_f * 3.0 * alpha_k(p.alpha, 3) * p.t + 2.0 * p.t_cmp,
            Scheme::SmtBoosted5 => i_f * 5.0 * alpha_k(p.alpha, 5) * p.t + 2.0 * p.t_cmp,
        }
    }

    /// Integral roll-forward progress attempted for a fault at round `i`.
    fn rollforward_rounds(&self, i: u32) -> u32 {
        let intent = self.cfg.scheme.rollforward_intent(i).floor() as u32;
        intent.min(self.cfg.params.s - i)
    }

    /// Decide whether the pick hits the fault-free state. Crash evidence
    /// wins; otherwise an attached predictor, otherwise Bernoulli(p).
    fn pick_correct(
        &mut self,
        faulty: Victim,
        predictor: &mut Option<&mut dyn FaultPredictor>,
    ) -> bool {
        if let Some(crashed) = self.crash {
            // evidence: the crashed version is the faulty one
            return crashed == faulty;
        }
        if let Some(pred) = predictor {
            let guess = pred.predict();
            let actual = match faulty {
                Victim::V1 => Suspect::V1,
                Victim::V2 => Suspect::V2,
            };
            pred.update(actual);
            return guess == actual;
        }
        self.rng.gen::<f64>() < self.cfg.p_correct
    }

    /// Run the recovery for a detection at round `i`. Returns the
    /// incident record.
    fn recover(
        &mut self,
        i: u32,
        fm: &FaultModel,
        predictor: &mut Option<&mut dyn FaultPredictor>,
    ) -> Incident {
        let start = self.clock;
        let rec_time = self.recovery_time(i);
        self.span(0, rec_time, SpanKind::Retry, || format!("V3 R1..R{i}"));
        if self.is_smt() && self.rollforward_rounds(i) > 0 {
            // A zero-length window (⌊i/4⌋ = 0 for i < 4, or i = s) is pure
            // stop-and-retry: the second hardware thread has nothing to
            // execute, so no roll-forward appears on the timeline.
            self.span(1, rec_time, SpanKind::RollForward, || {
                "roll-forward".to_string()
            });
        }
        self.clock += rec_time;
        self.span(0, self.cfg.params.t_cmp, SpanKind::Vote, || {
            "vote".to_string()
        });
        // (vote time is part of rec_time's 2t'; span is illustrative)

        // does a further fault hit the retry (V3 executes i rounds)?
        let retry_corrupt = self.recovery_corruption(fm, i);
        if retry_corrupt {
            self.report.faults_injected += 1;
            // a corrupted retry always fails the majority vote below —
            // the fault is detected by the vote itself
            self.report.faults_detected += 1;
        }

        let both_corrupt = self.corrupt[0] && self.corrupt[1];
        let vote_ok = !retry_corrupt && !both_corrupt;

        let mut progress = 0u32;
        if vote_ok {
            self.report.recoveries_ok += 1;
            // the faulty version (exactly one corrupt flag set)
            let faulty = if self.corrupt[0] {
                Victim::V1
            } else {
                Victim::V2
            };

            // round i itself is now confirmed (the vote produced a good
            // state at round i)
            self.round_in_interval = i;
            self.report.committed_rounds += 1;

            // roll-forward resolution
            let x = self.rollforward_rounds(i);
            if x > 0 && self.cfg.scheme != Scheme::Conventional {
                let rf_exec_rounds = match self.cfg.scheme {
                    Scheme::SmtDeterministic => 4 * x,
                    Scheme::SmtProbabilistic => 2 * x,
                    Scheme::SmtPredictive => x,
                    Scheme::SmtBoosted3 => 2 * x,
                    Scheme::SmtBoosted5 => 4 * x,
                    Scheme::Conventional => 0,
                };
                let rf_corrupt = self.recovery_corruption(fm, rf_exec_rounds);
                if rf_corrupt {
                    self.report.faults_injected += 1;
                }
                let hit = if self.cfg.scheme.progress_guaranteed() {
                    true
                } else {
                    self.pick_correct(faulty, predictor)
                };
                if self.cfg.scheme.detects_during_rollforward() {
                    if rf_corrupt {
                        self.report.rollforward_discards += 1;
                        // the roll-forward comparison caught it
                        self.report.faults_detected += 1;
                    } else if hit {
                        self.report.rollforward_hits += 1;
                        progress = x;
                    } else {
                        self.report.rollforward_misses += 1;
                    }
                } else {
                    // predictive: no comparisons during roll-forward
                    if hit {
                        self.report.rollforward_hits += 1;
                        progress = x;
                        if rf_corrupt {
                            // adopted, and nothing will ever detect it
                            self.report.silent_corruptions += 1;
                            self.report.faults_escaped += 1;
                        }
                    } else {
                        self.report.rollforward_misses += 1;
                        if rf_corrupt {
                            // the corrupted state was discarded unseen:
                            // the corruption never entered the system
                            self.report.faults_masked += 1;
                        }
                    }
                }
            }
            self.round_in_interval += progress;
            self.report.committed_rounds += u64::from(progress);
            self.corrupt = [false, false];
            self.crash = None;
            self.consecutive_rollbacks = 0;
            self.journal_action(JournalAction::Recover, progress);
            obs_event!(
                self.rec, self.clock, "vds", "recovery",
                "round" => u64::from(i),
                "scheme" => self.cfg.scheme.name(),
                "rollforward_progress" => u64::from(progress),
            );
            if self.round_in_interval >= self.cfg.params.s {
                self.take_checkpoint();
            }
        } else {
            // three different states (or two corrupt versions): resort to
            // rollback — every round since the checkpoint is lost.
            self.report.rollbacks += 1;
            self.debit_committed(u64::from(i - 1), "rollback");
            self.round_in_interval = 0;
            self.corrupt = [false, false];
            self.crash = None;
            self.clock += self.cfg.restore_cost;
            self.consecutive_rollbacks += 1;
            obs_event!(
                self.rec, self.clock, "vds", "rollback",
                "round" => u64::from(i),
                "rounds_lost" => u64::from(i - 1),
                "consecutive" => u64::from(self.consecutive_rollbacks),
            );
            if self.consecutive_rollbacks > self.cfg.max_consecutive_rollbacks {
                self.report.shutdown = true;
                obs_event!(self.rec, self.clock, "vds", "shutdown");
                self.journal_action(JournalAction::Shutdown, 0);
            } else {
                self.journal_action(JournalAction::Rollback, 0);
            }
        }
        self.report.time_recovery += self.clock - start;
        Incident {
            i,
            recovery_time: rec_time,
            progress,
            vote_ok,
        }
    }
}

/// Run a VDS until `target_rounds` rounds are committed (or a fail-safe
/// shutdown occurs).
pub fn run(
    cfg: &AbstractConfig,
    fault_model: FaultModel,
    target_rounds: u64,
    seed: u64,
) -> RunReport {
    run_with_predictor(cfg, fault_model, target_rounds, seed, None)
}

/// [`run`], recording metrics and a bounded event trace into a fresh
/// [`Recorder`]: per-round / detection / checkpoint / recovery /
/// rollback events at simulated time, plus the report mirrored under
/// `vds.*` and per-phase simulated-time gauges.
pub fn run_recorded(
    cfg: &AbstractConfig,
    fault_model: FaultModel,
    target_rounds: u64,
    seed: u64,
) -> (RunReport, Recorder) {
    run_engine(cfg, fault_model, target_rounds, seed, None, Recorder::new())
}

/// [`run`], with a caller-supplied [`Recorder`] (which may have the
/// flight-recorder journal enabled — every executed round is then
/// journalled with synthetic per-version digests).
pub fn run_with_recorder(
    cfg: &AbstractConfig,
    fault_model: FaultModel,
    target_rounds: u64,
    seed: u64,
    rec: Recorder,
) -> (RunReport, Recorder) {
    run_engine(cfg, fault_model, target_rounds, seed, None, rec)
}

/// [`run`], with an optional fault-version predictor supplying the picks
/// of the probabilistic/predictive schemes.
pub fn run_with_predictor(
    cfg: &AbstractConfig,
    fault_model: FaultModel,
    target_rounds: u64,
    seed: u64,
    predictor: Option<&mut dyn FaultPredictor>,
) -> RunReport {
    // Monomorphized against the zero-sized sink: the uninstrumented
    // entry points pay nothing for the instrumentation below.
    run_engine(
        cfg,
        fault_model,
        target_rounds,
        seed,
        predictor,
        NoopRecorder,
    )
    .0
}

fn run_engine<R: Record>(
    cfg: &AbstractConfig,
    fault_model: FaultModel,
    target_rounds: u64,
    seed: u64,
    mut predictor: Option<&mut dyn FaultPredictor>,
    rec: R,
) -> (RunReport, R) {
    cfg.params.validate();
    assert!((0.0..=1.0).contains(&cfg.p_correct));
    let mut e = Engine::with_recorder(cfg, seed, rec);
    // Livelock guard: at high fault rates with a long checkpoint interval,
    // late-interval recoveries are almost always corrupted themselves and
    // the system thrashes between roll-backs without ever completing an
    // interval. A real system's watchdog would declare the mission lost;
    // we bound the attempts and report a fail-safe shutdown.
    let max_attempts = 64 * target_rounds + 100_000;
    let mut attempts = 0u64;
    while e.report.committed_rounds < target_rounds && !e.report.shutdown {
        attempts += 1;
        if attempts > max_attempts {
            e.report.shutdown = true;
            break;
        }
        match e.normal_round(&fault_model) {
            None => {
                if e.round_in_interval >= cfg.params.s {
                    e.take_checkpoint();
                    e.journal_action(JournalAction::Checkpoint, 0);
                }
            }
            Some(i) => {
                e.recover(i, &fault_model, &mut predictor);
            }
        }
        e.journal_finish();
    }
    e.report.total_time = e.clock;
    let mut rec = e.rec;
    if cfg.record_timeline {
        if rec.is_active() {
            e.timeline.export_spans(&mut rec, cfg.scheme.name());
        }
        e.report.timeline = Some(e.timeline);
    }
    e.report.export_metrics(&mut rec, "vds");
    crate::conformance::export_metrics(&mut rec, "vds", cfg, &e.report);
    rec.rollup_spans();
    (e.report, rec)
}

/// Simulate exactly one recovery incident at round `i` (victim fixed,
/// pick forced if given) and return its measured facts. Used by the
/// per-incident validation of Eqs. (6)–(12).
pub fn simulate_incident(
    cfg: &AbstractConfig,
    i: u32,
    victim: Victim,
    force_pick_correct: Option<bool>,
) -> Incident {
    assert!(i >= 1 && i <= cfg.params.s);
    let mut cfg = cfg.clone();
    if let Some(hit) = force_pick_correct {
        cfg.p_correct = if hit { 1.0 } else { 0.0 };
    }
    let fm = FaultModel::OneShot { round: i, victim };
    let mut e = Engine::with_recorder(&cfg, 1, NoopRecorder);
    // advance through the fault-free prefix
    loop {
        match e.normal_round(&fm) {
            None => {
                if e.round_in_interval >= cfg.params.s {
                    e.take_checkpoint();
                }
            }
            Some(at) => {
                assert_eq!(at, i, "one-shot fault must be detected at round i");
                let mut none: Option<&mut dyn FaultPredictor> = None;
                return e.recover(at, &fm, &mut none);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vds_analytic::timing;

    fn cfg(scheme: Scheme) -> AbstractConfig {
        AbstractConfig::new(Params::paper_default(), scheme)
    }

    // ---- normal processing (Eq. 1, 3, 4) ----

    #[test]
    fn fault_free_round_times_match_equations() {
        let p = Params::paper_default();
        let n = 40;
        let conv = run(&cfg(Scheme::Conventional), FaultModel::None, n, 1);
        let smt = run(&cfg(Scheme::SmtProbabilistic), FaultModel::None, n, 1);
        assert_eq!(conv.committed_rounds, n);
        let t1 = conv.total_time / n as f64;
        let t2 = smt.total_time / n as f64;
        assert!((t1 - timing::t1_round(&p)).abs() < 1e-9, "conv {t1}");
        assert!((t2 - timing::tht2_round(&p)).abs() < 1e-9, "smt {t2}");
        // Eq. (4)
        let g = t1 / t2;
        assert!((g - timing::g_round_exact(&p)).abs() < 1e-9);
    }

    #[test]
    fn checkpoints_every_s_rounds() {
        let mut c = cfg(Scheme::Conventional);
        c.checkpoint_cost = 1.0;
        let r = run(&c, FaultModel::None, 100, 1);
        assert_eq!(r.checkpoints, 5); // s = 20
        assert!((r.time_checkpoint - 5.0).abs() < 1e-9);
    }

    // ---- single incidents (Eqs. 2, 5, 6, 9, 10, 11) ----

    #[test]
    fn conventional_recovery_time_is_eq2() {
        let p = Params::paper_default();
        for i in [1u32, 7, 20] {
            let inc = simulate_incident(&cfg(Scheme::Conventional), i, Victim::V1, None);
            assert!(
                (inc.recovery_time - timing::t1_corr(&p, i)).abs() < 1e-9,
                "i={i}"
            );
            assert!(inc.vote_ok);
            assert_eq!(inc.progress, 0);
        }
    }

    #[test]
    fn smt_recovery_time_is_eq5() {
        let p = Params::paper_default();
        for i in [1u32, 7, 20] {
            let inc = simulate_incident(&cfg(Scheme::SmtDeterministic), i, Victim::V2, None);
            assert!(
                (inc.recovery_time - timing::tht2_corr(&p, i)).abs() < 1e-9,
                "i={i}"
            );
        }
    }

    #[test]
    fn deterministic_progress_is_quarter_clamped() {
        // s = 20: i=8 → 2; i=18 → min(4, 2) = 2; i=20 → 0; i=3 → 0
        for (i, want) in [(8u32, 2u32), (18, 2), (20, 0), (3, 0), (16, 4)] {
            let inc = simulate_incident(&cfg(Scheme::SmtDeterministic), i, Victim::V1, None);
            assert_eq!(inc.progress, want, "i={i}");
        }
    }

    #[test]
    fn early_round_recovery_is_pure_stop_and_retry() {
        // ⌊i/4⌋ = 0 for i ∈ {1,2,3} (deterministic) and ⌊i/2⌋ = 0 for
        // i = 1 (probabilistic): the roll-forward window has zero length,
        // so recovery is pure stop-and-retry — no hits, no misses, no
        // discards, and nothing on the second hardware thread's timeline.
        let cases: [(Scheme, &[u32]); 2] = [
            (Scheme::SmtDeterministic, &[1, 2, 3]),
            (Scheme::SmtProbabilistic, &[1]),
        ];
        for (scheme, rounds) in cases {
            for &i in rounds {
                let inc = simulate_incident(&cfg(scheme), i, Victim::V1, None);
                assert_eq!(inc.progress, 0, "{scheme:?} i={i}");
                assert!(inc.vote_ok, "{scheme:?} i={i}");
                let mut c = cfg(scheme);
                c.record_timeline = true;
                let fm = FaultModel::OneShot {
                    round: i,
                    victim: Victim::V2,
                };
                let r = run(&c, fm, 30, 1);
                assert_eq!(r.rollforward_hits, 0, "{scheme:?} i={i}: {r}");
                assert_eq!(r.rollforward_misses, 0, "{scheme:?} i={i}: {r}");
                assert_eq!(r.rollforward_discards, 0, "{scheme:?} i={i}: {r}");
                assert_eq!(r.detections, 1, "{scheme:?} i={i}: {r}");
                assert_eq!(r.recoveries_ok, 1, "{scheme:?} i={i}: {r}");
                let tl = r.timeline.expect("timeline requested");
                assert!(
                    !tl.spans().iter().any(|s| s.kind == SpanKind::RollForward),
                    "{scheme:?} i={i}: zero-length window must not record a \
                     roll-forward span"
                );
            }
        }
        // sanity: a non-zero window still records the roll-forward span
        let mut c = cfg(Scheme::SmtDeterministic);
        c.record_timeline = true;
        let r = run(
            &c,
            FaultModel::OneShot {
                round: 8,
                victim: Victim::V2,
            },
            30,
            1,
        );
        assert!(r
            .timeline
            .unwrap()
            .spans()
            .iter()
            .any(|s| s.kind == SpanKind::RollForward));
    }

    #[test]
    fn probabilistic_progress_depends_on_pick() {
        let hit = simulate_incident(&cfg(Scheme::SmtProbabilistic), 10, Victim::V1, Some(true));
        assert_eq!(hit.progress, 5);
        let miss = simulate_incident(&cfg(Scheme::SmtProbabilistic), 10, Victim::V1, Some(false));
        assert_eq!(miss.progress, 0);
        // same wall time either way (Eq. 5 doesn't depend on the pick)
        assert_eq!(hit.recovery_time, miss.recovery_time);
    }

    #[test]
    fn predictive_progress_is_full_i_clamped() {
        for (i, want) in [(5u32, 5u32), (10, 10), (14, 6), (20, 0)] {
            let inc = simulate_incident(&cfg(Scheme::SmtPredictive), i, Victim::V2, Some(true));
            assert_eq!(inc.progress, want, "i={i}");
        }
        let miss = simulate_incident(&cfg(Scheme::SmtPredictive), 10, Victim::V2, Some(false));
        assert_eq!(miss.progress, 0);
    }

    #[test]
    fn measured_incident_gain_matches_eq10_and_eq11() {
        // G_hit(i) = (T1_corr + progress·T1_round) / THT2_corr with
        // integral progress; compare to the analytic forms evaluated with
        // the same integral progress.
        let p = Params::paper_default();
        for i in 1..=20u32 {
            let inc = simulate_incident(&cfg(Scheme::SmtPredictive), i, Victim::V1, Some(true));
            let g_meas = (timing::t1_corr(&p, i) + f64::from(inc.progress) * timing::t1_round(&p))
                / inc.recovery_time;
            let x = f64::from(i).min(f64::from(p.s - i)).floor();
            let g_expect =
                (timing::t1_corr(&p, i) + x * timing::t1_round(&p)) / timing::tht2_corr(&p, i);
            assert!((g_meas - g_expect).abs() < 1e-9, "i={i}");
            // miss: Eq. (11)
            let miss = simulate_incident(&cfg(Scheme::SmtPredictive), i, Victim::V1, Some(false));
            let l_meas = timing::t1_corr(&p, i) / miss.recovery_time;
            let l_expect = vds_analytic::predictive::l_miss_exact(&p, i);
            assert!((l_meas - l_expect).abs() < 1e-9, "i={i} miss");
        }
    }

    // ---- long runs ----

    #[test]
    fn fault_free_long_run_throughputs_ratio_is_g_round() {
        let p = Params::paper_default();
        let n = 1000;
        let conv = run(&cfg(Scheme::Conventional), FaultModel::None, n, 3);
        let smt = run(&cfg(Scheme::SmtPredictive), FaultModel::None, n, 3);
        let ratio = smt.throughput() / conv.throughput();
        assert!((ratio - timing::g_round_exact(&p)).abs() < 1e-6);
    }

    #[test]
    fn faulty_run_recovers_and_completes() {
        let r = run(
            &cfg(Scheme::SmtProbabilistic),
            FaultModel::PerRound { q: 0.02 },
            2_000,
            7,
        );
        assert_eq!(r.committed_rounds, 2_000);
        assert!(r.faults_injected > 20, "faults={}", r.faults_injected);
        assert!(r.detections > 0);
        assert!(r.recoveries_ok > 0);
        assert!(!r.shutdown);
        assert!(r.time_recovery > 0.0);
        // lifecycle conservation: every injected fault is classified
        assert_eq!(
            r.faults_detected + r.faults_masked + r.faults_escaped,
            r.faults_injected,
            "{r}"
        );
    }

    #[test]
    fn detecting_schemes_have_no_silent_corruptions() {
        for scheme in [
            Scheme::Conventional,
            Scheme::SmtDeterministic,
            Scheme::SmtProbabilistic,
            Scheme::SmtBoosted3,
            Scheme::SmtBoosted5,
        ] {
            let r = run(&cfg(scheme), FaultModel::PerRound { q: 0.05 }, 500, 11);
            assert_eq!(r.silent_corruptions, 0, "{:?}", scheme);
            // detecting schemes never let a fault escape, and every
            // injected fault ends up in exactly one lifecycle bucket
            assert_eq!(r.faults_escaped, 0, "{:?}", scheme);
            assert_eq!(
                r.faults_detected + r.faults_masked + r.faults_escaped,
                r.faults_injected,
                "{scheme:?}: {r}"
            );
        }
    }

    #[test]
    fn predictive_scheme_can_silently_adopt_under_heavy_faults() {
        let r = run(
            &cfg(Scheme::SmtPredictive),
            FaultModel::PerRound { q: 0.08 },
            5_000,
            13,
        );
        assert!(
            r.silent_corruptions > 0,
            "expected some silent adoptions: {r}"
        );
        // silent adoptions are exactly the escaped class here
        assert_eq!(r.faults_escaped, r.silent_corruptions, "{r}");
        assert_eq!(
            r.faults_detected + r.faults_masked + r.faults_escaped,
            r.faults_injected,
            "{r}"
        );
    }

    #[test]
    fn double_faults_force_rollback() {
        // q high enough that both versions get corrupted in one round
        // reasonably often, but below the regime where consecutive
        // rollbacks can trip the fail-safe shutdown for unlucky seeds
        let r = run(
            &cfg(Scheme::SmtDeterministic),
            FaultModel::PerRound { q: 0.15 },
            500,
            17,
        );
        assert!(r.rollbacks > 0, "{r}");
        assert_eq!(r.committed_rounds, 500);
    }

    #[test]
    fn crash_evidence_makes_predictive_picks_perfect() {
        let mut c = cfg(Scheme::SmtPredictive);
        c.p_correct = 0.0; // without evidence, every pick would miss
        let r = run(
            &c,
            FaultModel::PerRoundWithCrashes {
                q: 0.03,
                crash_fraction: 1.0,
            },
            2_000,
            19,
        );
        assert!(r.rollforward_hits > 0, "{r}");
        assert_eq!(r.rollforward_misses, 0, "evidence never misses: {r}");
    }

    #[test]
    fn predictor_hook_drives_picks() {
        use vds_predictor::predictors::LastOutcome;
        // faults always hit V2; last-outcome converges to predicting V2
        let mut pred = LastOutcome::default();
        let mut c = cfg(Scheme::SmtPredictive);
        c.p_correct = 0.0; // would always miss without the predictor
        let mut total_hits = 0;
        let mut total = 0;
        // repeated one-shot incidents, predictor persists across runs
        for k in 0..50 {
            let r = run_with_predictor(
                &c,
                FaultModel::OneShot {
                    round: 5,
                    victim: Victim::V2,
                },
                30,
                k,
                Some(&mut pred),
            );
            total_hits += r.rollforward_hits;
            total += r.rollforward_hits + r.rollforward_misses;
        }
        assert!(total >= 50);
        assert!(
            total_hits as f64 / total as f64 > 0.9,
            "hits {total_hits}/{total}"
        );
    }

    #[test]
    fn shutdown_after_persistent_rollbacks() {
        let mut c = cfg(Scheme::Conventional);
        c.max_consecutive_rollbacks = 3;
        // q = 0.9: almost every round double-faults, votes keep failing
        let r = run(&c, FaultModel::PerRound { q: 0.9 }, 10_000, 23);
        assert!(r.shutdown, "{r}");
        assert!(r.committed_rounds < 10_000);
    }

    #[test]
    fn timeline_records_figure1_shape() {
        let mut c = cfg(Scheme::SmtProbabilistic);
        c.record_timeline = true;
        let r = run(
            &c,
            FaultModel::OneShot {
                round: 4,
                victim: Victim::V2,
            },
            10,
            1,
        );
        let tl = r.timeline.expect("timeline requested");
        assert_eq!(tl.lanes(), 2, "SMT timeline has two hardware threads");
        let art = tl.render_ascii(80);
        assert!(art.contains("T0"));
        assert!(art.contains("r"), "retry visible: \n{art}");
        // conventional: one lane
        let mut cc = cfg(Scheme::Conventional);
        cc.record_timeline = true;
        let rc = run(&cc, FaultModel::None, 5, 1);
        assert_eq!(rc.timeline.unwrap().lanes(), 1);
    }

    #[test]
    fn processor_stops_roll_back_from_stable_storage() {
        let r = run(
            &cfg(Scheme::SmtProbabilistic),
            FaultModel::Mission {
                q: 0.02,
                crash_fraction: 0.2,
                stop_fraction: 0.3,
            },
            3_000,
            31,
        );
        assert_eq!(r.committed_rounds, 3_000);
        assert!(r.processor_stops > 0, "{r}");
        assert!(r.rollbacks >= r.processor_stops, "{r}");
        // the invariant detections = recoveries + rollbacks still holds
        assert_eq!(r.detections, r.recoveries_ok + r.rollbacks);
    }

    #[test]
    fn stop_storm_forces_failsafe_shutdown() {
        let mut c = cfg(Scheme::Conventional);
        c.max_consecutive_rollbacks = 4;
        let r = run(
            &c,
            FaultModel::Mission {
                q: 0.95,
                crash_fraction: 0.0,
                stop_fraction: 1.0,
            },
            1_000,
            37,
        );
        assert!(r.shutdown, "{r}");
    }

    #[test]
    fn recorded_run_mirrors_report_and_traces_events() {
        let c = cfg(Scheme::SmtProbabilistic);
        let fm = FaultModel::PerRound { q: 0.05 };
        let (r, rec) = run_recorded(&c, fm, 200, 5);
        let reg = rec.registry();
        assert_eq!(reg.counter("vds.committed_rounds"), r.committed_rounds);
        assert_eq!(reg.counter("vds.detections"), r.detections);
        assert_eq!(reg.counter("vds.checkpoints"), r.checkpoints);
        assert_eq!(reg.gauge_value("vds.time.total"), Some(r.total_time));
        // hot-path events only exist with the `obs` macros compiled in
        if cfg!(feature = "obs") {
            let events: Vec<&str> = rec.trace().records().map(|e| e.event).collect();
            assert!(events.contains(&"round"));
            assert!(events.contains(&"detect"));
            assert!(events.contains(&"checkpoint"));
        } else {
            assert!(rec.trace().is_empty());
        }
        // plain run and recorded run agree on the simulation itself
        let plain = run(&c, fm, 200, 5);
        assert_eq!(plain.total_time, r.total_time);
        assert_eq!(plain.committed_rounds, r.committed_rounds);
        // and two recorded runs export byte-identical metrics
        let (_, rec2) = run_recorded(&c, fm, 200, 5);
        assert_eq!(rec.registry().to_csv(), rec2.registry().to_csv());
        assert_eq!(rec.trace().to_jsonl(), rec2.trace().to_jsonl());
    }

    #[test]
    fn runs_are_deterministic() {
        let c = cfg(Scheme::SmtProbabilistic);
        let a = run(&c, FaultModel::PerRound { q: 0.05 }, 500, 99);
        let b = run(&c, FaultModel::PerRound { q: 0.05 }, 500, 99);
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.faults_injected, b.faults_injected);
        assert_eq!(a.rollforward_hits, b.rollforward_hits);
    }

    #[test]
    fn journaled_run_records_every_executed_round() {
        use vds_obs::journal::JournalHeader;
        let c = cfg(Scheme::SmtProbabilistic);
        let fm = FaultModel::PerRound { q: 0.05 };
        let journaled = || {
            let mut rec = Recorder::new();
            rec.enable_journal(JournalHeader::new(
                "abstract",
                Scheme::SmtProbabilistic.name(),
                5,
                c.params.s,
                200,
            ));
            run_with_recorder(&c, fm, 200, 5, rec)
        };
        let (r, rec) = journaled();
        let j = rec.journal();
        assert!(r.detections > 0, "fixture must exercise recovery: {r}");
        assert!(!j.is_empty());
        // every executed round got exactly one entry; committed counts only
        // drop across rollbacks, and the last one matches the report
        let mut last_committed = 0;
        for e in j.entries() {
            if e.committed < last_committed {
                assert!(
                    matches!(e.action, JournalAction::Rollback | JournalAction::Shutdown),
                    "{e:?}"
                );
            }
            last_committed = e.committed;
            assert_eq!(e.lane, 0);
        }
        assert_eq!(last_committed, r.committed_rounds);
        assert_eq!(j.divergences(), r.detections + r.processor_stops);
        // a fault-free matching round has agreeing synthetic digests; a
        // mismatch entry has diverging ones
        let clean = j
            .entries()
            .iter()
            .find(|e| e.verdict == JournalVerdict::Match)
            .unwrap();
        assert_eq!(clean.d1, clean.d2);
        let bad = j
            .entries()
            .iter()
            .find(|e| e.verdict == JournalVerdict::Mismatch)
            .unwrap();
        assert_ne!(bad.d1, bad.d2);
        assert!(bad.fault.is_some());
        assert!(matches!(
            bad.action,
            JournalAction::Recover | JournalAction::Rollback
        ));
        // fault-bearing entries carry consecutive lane-local fault ids
        let ids: Vec<u64> = j
            .entries()
            .iter()
            .filter(|e| e.fault.is_some())
            .map(|e| e.fault_id.expect("fault entry has an id"))
            .collect();
        assert!(!ids.is_empty());
        assert_eq!(ids, (0..ids.len() as u64).collect::<Vec<_>>());
        // forensics over the journal sees every fault event as detected
        // in its own round (zero latency), with nothing escaped
        let tracker = vds_obs::ForensicsTracker::for_journal(j).unwrap();
        let rep = tracker.report();
        assert_eq!(rep.injected, ids.len() as u64);
        assert_eq!(rep.detected, ids.len() as u64);
        assert!(rep.escapes.is_empty());
        // byte-identical across runs, and round-trips through JSONL
        let (_, rec2) = journaled();
        assert_eq!(j.to_jsonl(), rec2.journal().to_jsonl());
        let parsed = vds_obs::Journal::from_jsonl(&j.to_jsonl()).unwrap();
        assert_eq!(&parsed, j);
        assert!(parsed.first_divergence(rec2.journal()).is_none());
        // disabled journal stays empty
        let (_, plain) = run_recorded(&c, fm, 200, 5);
        assert!(plain.journal().is_empty());
    }
}
