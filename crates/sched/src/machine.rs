//! The machine: an SMT core plus an OS process table.

use vds_smtsim::asm::assemble;
use vds_smtsim::core::{
    Core, CoreConfig, RunOutcome, SavedContext, Thread, ThreadId, ThreadState, Trap,
};
use vds_smtsim::program::Program;

/// Identifies a process in the machine's process table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub usize);

/// Scheduling state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Switched out, runnable.
    Ready,
    /// Resident on the given hardware thread.
    Resident(ThreadId),
    /// Ended its current round (`yield`); resumable.
    Yielded,
    /// Ran `halt`.
    Halted,
    /// Took a trap.
    Trapped(Trap),
}

/// What happened when a process was run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcOutcome {
    /// The process ended a round.
    Yielded,
    /// The process halted.
    Halted,
    /// The process trapped.
    Trapped(Trap),
    /// The cycle budget expired first.
    Budget,
}

#[derive(Debug)]
struct ProcEntry {
    name: String,
    /// Saved context while switched out; `None` while resident.
    ctx: Option<SavedContext>,
    state: ProcState,
    cycles_used: u64,
    dispatches: u64,
}

/// A processor with an OS on top: process table, dispatch, context-switch
/// accounting.
#[derive(Debug)]
pub struct Machine {
    core: Core,
    procs: Vec<ProcEntry>,
    resident: Vec<Option<ProcId>>,
    ctx_switch_cycles: u32,
    switches: u64,
}

impl Machine {
    /// Build a machine. `ctx_switch_cycles` is the paper's `c`, in cycles.
    pub fn new(cfg: CoreConfig, ctx_switch_cycles: u32) -> Self {
        let n = cfg.max_threads;
        let mut core = Core::new(cfg);
        // park an idle halted program in every hardware context
        let idle = assemble("halt\n").expect("idle program");
        for _ in 0..n {
            core.add_thread(&idle, 1);
        }
        // drive each idle thread to Halted so contexts are quiescent
        core.run_until_all_blocked(16);
        Machine {
            core,
            procs: Vec::new(),
            resident: vec![None; n],
            ctx_switch_cycles,
            switches: 0,
        }
    }

    /// The underlying core (read access — counters, caches, cycles).
    pub fn core(&self) -> &Core {
        &self.core
    }

    /// Mutable core access (fault injection).
    pub fn core_mut(&mut self) -> &mut Core {
        &mut self.core
    }

    /// Total machine cycles elapsed.
    pub fn cycles(&self) -> u64 {
        self.core.cycles()
    }

    /// Number of context switches performed (dispatches that displaced a
    /// different process or filled an empty context).
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Number of hardware contexts.
    pub fn hw_threads(&self) -> usize {
        self.resident.len()
    }

    /// Create a process from a program with a private `dmem_words`-word
    /// address space. The process starts switched out, `Ready`.
    pub fn spawn(&mut self, name: impl Into<String>, prog: &Program, dmem_words: usize) -> ProcId {
        assert!(
            prog.data.len() <= dmem_words,
            "data image exceeds address space"
        );
        let mut dmem = prog.data.clone();
        dmem.resize(dmem_words, 0);
        self.procs.push(ProcEntry {
            name: name.into(),
            ctx: Some(SavedContext {
                regs: [0; 16],
                pc: prog.entry,
                prog: prog.clone(),
                dmem,
                state: ThreadState::Ready,
            }),
            state: ProcState::Ready,
            cycles_used: 0,
            dispatches: 0,
        });
        ProcId(self.procs.len() - 1)
    }

    /// Process state.
    pub fn state(&self, pid: ProcId) -> ProcState {
        self.procs[pid.0].state
    }

    /// Process name.
    pub fn name(&self, pid: ProcId) -> &str {
        &self.procs[pid.0].name
    }

    /// Cycles consumed while this process was running (shared cycles on an
    /// SMT machine count for every resident process).
    pub fn cycles_used(&self, pid: ProcId) -> u64 {
        self.procs[pid.0].cycles_used
    }

    /// Which process is resident on a hardware thread.
    pub fn resident_on(&self, hw: ThreadId) -> Option<ProcId> {
        self.resident[hw.0]
    }

    /// Read a resident or switched-out process's architectural state via a
    /// callback (registers, memory) — used for snapshots and comparisons.
    pub fn with_state<R>(&self, pid: ProcId, f: impl FnOnce(&[u32; 16], u32, &[u32]) -> R) -> R {
        match self.procs[pid.0].state {
            ProcState::Resident(hw) => {
                let t: &Thread = self.core.thread(hw);
                f(&t.regs, t.pc, &t.dmem)
            }
            _ => {
                let ctx = self.procs[pid.0].ctx.as_ref().expect("switched out");
                f(&ctx.regs, ctx.pc, &ctx.dmem)
            }
        }
    }

    /// Mutate a process's architectural state (fault injection). The
    /// closure receives `(regs, pc, dmem, text)`.
    pub fn with_state_mut<R>(
        &mut self,
        pid: ProcId,
        f: impl FnOnce(&mut [u32; 16], &mut u32, &mut [u32], &mut [u32]) -> R,
    ) -> R {
        match self.procs[pid.0].state {
            ProcState::Resident(hw) => {
                let t = self.core.thread_mut(hw);
                f(&mut t.regs, &mut t.pc, &mut t.dmem, &mut t.prog.text)
            }
            _ => {
                let ctx = self.procs[pid.0].ctx.as_mut().expect("switched out");
                f(
                    &mut ctx.regs,
                    &mut ctx.pc,
                    &mut ctx.dmem,
                    &mut ctx.prog.text,
                )
            }
        }
    }

    /// Replace a process's full context (rollback to a checkpoint).
    /// The process must be switched out.
    pub fn replace_context(&mut self, pid: ProcId, ctx: SavedContext) {
        let p = &mut self.procs[pid.0];
        assert!(
            !matches!(p.state, ProcState::Resident(_)),
            "cannot replace the context of a resident process"
        );
        p.ctx = Some(ctx);
        p.state = ProcState::Ready;
    }

    /// Take a process's saved context (it must be switched out).
    pub fn clone_context(&self, pid: ProcId) -> SavedContext {
        match self.procs[pid.0].state {
            ProcState::Resident(hw) => {
                let t = self.core.thread(hw);
                SavedContext {
                    regs: t.regs,
                    pc: t.pc,
                    prog: t.prog.clone(),
                    dmem: t.dmem.clone(),
                    state: t.state,
                }
            }
            _ => {
                let ctx = self.procs[pid.0].ctx.as_ref().expect("ctx present");
                SavedContext {
                    regs: ctx.regs,
                    pc: ctx.pc,
                    prog: ctx.prog.clone(),
                    dmem: ctx.dmem.clone(),
                    state: ctx.state,
                }
            }
        }
    }

    /// Dispatch `pid` onto hardware thread `hw`.
    ///
    /// * If `pid` is already resident there, this just resumes it after a
    ///   yield (no switch cost — same process continues).
    /// * Otherwise the currently resident process (if any) is switched
    ///   out, the new one switched in, and the hardware thread is parked
    ///   for the context-switch cost.
    ///
    /// # Panics
    /// Panics if the process has halted or trapped, or is resident on a
    /// *different* hardware thread.
    pub fn dispatch(&mut self, pid: ProcId, hw: ThreadId) {
        match self.procs[pid.0].state {
            ProcState::Halted => panic!("cannot dispatch a halted process"),
            ProcState::Trapped(_) => panic!("cannot dispatch a trapped process"),
            ProcState::Resident(cur) => {
                assert_eq!(cur, hw, "process resident on another hardware thread");
                // resume after yield
                if self.core.thread(hw).state == ThreadState::Yielded {
                    self.core.resume(hw);
                }
                return;
            }
            ProcState::Ready | ProcState::Yielded => {}
        }

        // switch out whoever is there
        if let Some(old) = self.resident[hw.0] {
            self.switch_out(old, hw);
        }

        let p = &mut self.procs[pid.0];
        let mut incoming = p.ctx.take().expect("non-resident process has a context");
        // a yielded process resumes at the instruction after its yield
        incoming.state = ThreadState::Ready;
        let _displaced = self.core.swap_context(hw, incoming);
        self.core.park_thread(hw, self.ctx_switch_cycles);
        self.switches += 1;
        p.state = ProcState::Resident(hw);
        p.dispatches += 1;
        self.resident[hw.0] = Some(pid);
    }

    fn switch_out(&mut self, pid: ProcId, hw: ThreadId) {
        let t_state = self.core.thread(hw).state;
        let idle = SavedContext {
            regs: [0; 16],
            pc: 0,
            prog: assemble("halt\n").expect("idle"),
            dmem: vec![0; 1],
            state: ThreadState::Halted,
        };
        let outgoing = self.core.swap_context(hw, idle);
        let p = &mut self.procs[pid.0];
        p.ctx = Some(outgoing);
        p.state = match t_state {
            ThreadState::Yielded => ProcState::Yielded,
            ThreadState::Halted => ProcState::Halted,
            ThreadState::Trapped(tr) => ProcState::Trapped(tr),
            _ => ProcState::Ready,
        };
        self.resident[hw.0] = None;
    }

    /// Explicitly switch a process out of its hardware thread.
    pub fn preempt(&mut self, pid: ProcId) {
        if let ProcState::Resident(hw) = self.procs[pid.0].state {
            self.switch_out(pid, hw);
        }
    }

    /// Run the machine until the process on `hw` yields/halts/traps or
    /// the budget expires. Other resident processes execute concurrently.
    pub fn run_hw_until_block(&mut self, hw: ThreadId, budget: u64) -> ProcOutcome {
        let pid = self.resident[hw.0].expect("no process resident");
        let start = self.core.cycles();
        let out = self.core.run_until_thread_blocks(hw, budget);
        self.procs[pid.0].cycles_used += self.core.cycles() - start;
        match out {
            RunOutcome::AllYielded => {
                self.procs[pid.0].state = ProcState::Resident(hw);
                ProcOutcome::Yielded
            }
            RunOutcome::AllHalted => {
                self.switch_out(pid, hw);
                ProcOutcome::Halted
            }
            RunOutcome::Trapped(_, trap) => {
                self.switch_out(pid, hw);
                ProcOutcome::Trapped(trap)
            }
            RunOutcome::CycleBudgetExhausted => ProcOutcome::Budget,
        }
    }

    /// Run until *every* hardware thread with a resident process blocks
    /// (each yields, halts or traps), or the budget expires. Returns the
    /// per-hardware-thread outcomes (`None` for empty contexts).
    pub fn run_all_until_block(&mut self, budget: u64) -> Vec<Option<ProcOutcome>> {
        let deadline = self.core.cycles() + budget;
        let hws: Vec<ThreadId> = (0..self.resident.len()).map(ThreadId).collect();
        let mut outcomes: Vec<Option<ProcOutcome>> = vec![None; hws.len()];
        loop {
            let mut all_blocked = true;
            for &hw in &hws {
                if self.resident[hw.0].is_none() {
                    continue;
                }
                let st = self.core.thread(hw).state;
                match st {
                    ThreadState::Yielded => {
                        outcomes[hw.0] = Some(ProcOutcome::Yielded);
                    }
                    ThreadState::Halted | ThreadState::Trapped(_) => {
                        // settle bookkeeping via run_hw (already blocked)
                        let o = self.run_hw_until_block(hw, 0);
                        outcomes[hw.0] = Some(match o {
                            ProcOutcome::Budget => unreachable!("thread already blocked"),
                            other => other,
                        });
                    }
                    _ => all_blocked = false,
                }
            }
            if all_blocked {
                return outcomes;
            }
            if self.core.cycles() >= deadline {
                for (hw, o) in outcomes.iter_mut().enumerate() {
                    if o.is_none() && self.resident[hw].is_some() {
                        *o = Some(ProcOutcome::Budget);
                    }
                }
                return outcomes;
            }
            self.core.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vds_smtsim::kernels;

    fn two_round_prog() -> Program {
        assemble(
            r#"
                addi r1, r1, 1
                st   r1, 0(r0)
                yield
                addi r1, r1, 1
                st   r1, 0(r0)
                yield
                halt
            "#,
        )
        .unwrap()
    }

    #[test]
    fn spawn_dispatch_run() {
        let mut m = Machine::new(CoreConfig::default(), 10);
        let p = m.spawn("v1", &two_round_prog(), 8);
        assert_eq!(m.state(p), ProcState::Ready);
        m.dispatch(p, ThreadId(0));
        assert_eq!(m.state(p), ProcState::Resident(ThreadId(0)));
        assert_eq!(
            m.run_hw_until_block(ThreadId(0), 100_000),
            ProcOutcome::Yielded
        );
        m.with_state(p, |_, _, dmem| assert_eq!(dmem[0], 1));
    }

    #[test]
    fn yield_resume_same_process_no_switch_cost() {
        let mut m = Machine::new(CoreConfig::default(), 10);
        let p = m.spawn("v1", &two_round_prog(), 8);
        m.dispatch(p, ThreadId(0));
        let s0 = m.switches();
        m.run_hw_until_block(ThreadId(0), 100_000);
        m.dispatch(p, ThreadId(0)); // resume, same process
        assert_eq!(m.switches(), s0, "no context switch for a resume");
        assert_eq!(
            m.run_hw_until_block(ThreadId(0), 100_000),
            ProcOutcome::Yielded
        );
        m.with_state(p, |_, _, dmem| assert_eq!(dmem[0], 2));
    }

    #[test]
    fn alternating_processes_pay_switches() {
        let mut m = Machine::new(CoreConfig::single_threaded(), 25);
        let a = m.spawn("v1", &two_round_prog(), 8);
        let b = m.spawn("v2", &two_round_prog(), 8);
        m.dispatch(a, ThreadId(0));
        m.run_hw_until_block(ThreadId(0), 100_000);
        m.dispatch(b, ThreadId(0));
        m.run_hw_until_block(ThreadId(0), 100_000);
        m.dispatch(a, ThreadId(0));
        m.run_hw_until_block(ThreadId(0), 100_000);
        assert_eq!(m.switches(), 3);
        assert_eq!(m.state(a), ProcState::Resident(ThreadId(0)));
        assert_eq!(m.state(b), ProcState::Yielded);
        m.with_state(a, |_, _, d| assert_eq!(d[0], 2));
        m.with_state(b, |_, _, d| assert_eq!(d[0], 1));
    }

    #[test]
    fn context_switch_cost_is_visible_in_cycles() {
        let run_with_cost = |c: u32| {
            let mut m = Machine::new(CoreConfig::single_threaded(), c);
            let a = m.spawn("a", &two_round_prog(), 8);
            let b = m.spawn("b", &two_round_prog(), 8);
            for _ in 0..2 {
                m.dispatch(a, ThreadId(0));
                m.run_hw_until_block(ThreadId(0), 100_000);
                m.dispatch(b, ThreadId(0));
                m.run_hw_until_block(ThreadId(0), 100_000);
            }
            m.cycles()
        };
        let cheap = run_with_cost(0);
        let costly = run_with_cost(100);
        assert!(costly >= cheap + 300, "cheap={cheap} costly={costly}");
    }

    #[test]
    fn two_processes_in_parallel_on_smt() {
        let k = kernels::vecsum(64, 2);
        let prog = k.program();
        let mut m = Machine::new(CoreConfig::default(), 10);
        let a = m.spawn("v1", &prog, k.dmem_words);
        let b = m.spawn("v2", &prog, k.dmem_words);
        m.dispatch(a, ThreadId(0));
        m.dispatch(b, ThreadId(1));
        let outs = m.run_all_until_block(10_000_000);
        assert_eq!(outs[0], Some(ProcOutcome::Yielded));
        assert_eq!(outs[1], Some(ProcOutcome::Yielded));
        let da = m.with_state(a, |_, _, d| d[k.out_addr as usize]);
        let db = m.with_state(b, |_, _, d| d[k.out_addr as usize]);
        assert_eq!(da, db, "identical versions produce identical rounds");
    }

    #[test]
    fn trap_reported_and_process_removed() {
        let bad = assemble("li r1, 999\nld r2, 0(r1)\nhalt\n").unwrap();
        let mut m = Machine::new(CoreConfig::default(), 5);
        let p = m.spawn("bad", &bad, 8);
        m.dispatch(p, ThreadId(0));
        match m.run_hw_until_block(ThreadId(0), 100_000) {
            ProcOutcome::Trapped(Trap::AccessViolation { addr }) => assert_eq!(addr, 999),
            other => panic!("{other:?}"),
        }
        assert!(matches!(m.state(p), ProcState::Trapped(_)));
        assert_eq!(m.resident_on(ThreadId(0)), None);
    }

    #[test]
    fn rollback_via_replace_context() {
        let mut m = Machine::new(CoreConfig::default(), 5);
        let p = m.spawn("v", &two_round_prog(), 8);
        let fresh = m.clone_context(p);
        m.dispatch(p, ThreadId(0));
        m.run_hw_until_block(ThreadId(0), 100_000);
        m.preempt(p);
        m.with_state(p, |_, _, d| assert_eq!(d[0], 1));
        m.replace_context(p, fresh);
        m.with_state(p, |_, _, d| assert_eq!(d[0], 0, "rolled back"));
        m.dispatch(p, ThreadId(0));
        m.run_hw_until_block(ThreadId(0), 100_000);
        m.with_state(p, |_, _, d| assert_eq!(d[0], 1, "replays round 1"));
    }

    #[test]
    fn with_state_mut_reaches_resident_and_saved() {
        let mut m = Machine::new(CoreConfig::default(), 5);
        let p = m.spawn("v", &two_round_prog(), 8);
        m.with_state_mut(p, |regs, _, _, _| regs[5] = 77); // switched out
        m.dispatch(p, ThreadId(0));
        m.with_state(p, |regs, _, _| assert_eq!(regs[5], 77));
        m.with_state_mut(p, |_, _, dmem, _| dmem[3] = 9); // resident
        m.with_state(p, |_, _, dmem| assert_eq!(dmem[3], 9));
    }
}
