#![warn(missing_docs)]

//! # vds-sched — OS-level process scheduling over the SMT core
//!
//! The paper's system model assumes an operating system that "maps user
//! processes onto the hardware threads of the processor in the same manner
//! as on a two-processor machine", with versions in **separate address
//! spaces** and context switches costing `c`. This crate supplies that
//! layer:
//!
//! * [`machine::Machine`] — a processor (any number of hardware contexts)
//!   plus a process table. Processes are spawned, dispatched onto hardware
//!   threads (paying a context-switch cost when the resident process
//!   changes), run until they yield/halt/trap, and switched out again.
//! * [`machine::Process`] accounting — per-process cycle usage, switch
//!   counts.
//! * [`rr`] — a round-robin helper that drives two processes through
//!   alternating rounds on one hardware context, which is exactly the
//!   conventional-processor VDS execution model of the paper's §3.1.
//!
//! The VDS engine in `vds-core` builds both execution models (Figure 1a
//! and 1b) on this API.

pub mod machine;
pub mod rr;

pub use machine::{Machine, ProcId, ProcOutcome, ProcState};
