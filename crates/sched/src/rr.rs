//! Round-robin driving of processes through rounds on one hardware
//! thread — the conventional-processor execution model of the paper's
//! §3.1 ("the proceeding versions can be imagined as scheduled round
//! robin, with the context switched when they reach the end of a round").

use crate::machine::{Machine, ProcId, ProcOutcome};
use vds_smtsim::core::ThreadId;

/// Result of one full round-robin rotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rotation {
    /// Outcome for each process, in schedule order.
    pub outcomes: Vec<(ProcId, ProcOutcome)>,
    /// Machine cycles the rotation took.
    pub cycles: u64,
}

/// Drive each process in `order` through one round (up to its next yield,
/// halt or trap) on hardware thread `hw`, in sequence, paying a context
/// switch per dispatch.
pub fn rotate(machine: &mut Machine, order: &[ProcId], hw: ThreadId, budget: u64) -> Rotation {
    let start = machine.cycles();
    let mut outcomes = Vec::with_capacity(order.len());
    for &pid in order {
        machine.dispatch(pid, hw);
        let out = machine.run_hw_until_block(hw, budget);
        outcomes.push((pid, out));
    }
    Rotation {
        outcomes,
        cycles: machine.cycles() - start,
    }
}

/// Rotate until every process halts (or a trap/budget stops the loop).
/// Returns the number of completed rotations.
pub fn rotate_to_completion(
    machine: &mut Machine,
    order: &[ProcId],
    hw: ThreadId,
    budget_per_round: u64,
    max_rotations: u32,
) -> u32 {
    let mut live: Vec<ProcId> = order.to_vec();
    for rotation in 0..max_rotations {
        if live.is_empty() {
            return rotation;
        }
        let r = rotate(machine, &live, hw, budget_per_round);
        for (pid, out) in r.outcomes {
            match out {
                ProcOutcome::Halted | ProcOutcome::Trapped(_) => {
                    live.retain(|&p| p != pid);
                }
                ProcOutcome::Yielded => {}
                ProcOutcome::Budget => return rotation,
            }
        }
    }
    max_rotations
}

#[cfg(test)]
mod tests {
    use super::*;
    use vds_smtsim::asm::assemble;
    use vds_smtsim::core::CoreConfig;

    fn counting_prog(rounds: u32) -> vds_smtsim::program::Program {
        assemble(&format!(
            r#"
                li r14, {rounds}
            round:
                ld r1, 0(r0)
                addi r1, r1, 1
                st r1, 0(r0)
                subi r14, r14, 1
                yield
                bne r14, r0, round
                halt
            "#
        ))
        .unwrap()
    }

    #[test]
    fn rotation_runs_each_process_one_round() {
        let mut m = Machine::new(CoreConfig::single_threaded(), 10);
        let a = m.spawn("a", &counting_prog(3), 4);
        let b = m.spawn("b", &counting_prog(3), 4);
        let r = rotate(&mut m, &[a, b], ThreadId(0), 1_000_000);
        assert_eq!(r.outcomes[0].1, ProcOutcome::Yielded);
        assert_eq!(r.outcomes[1].1, ProcOutcome::Yielded);
        assert!(r.cycles > 0);
        m.with_state(a, |_, _, d| assert_eq!(d[0], 1));
        m.with_state(b, |_, _, d| assert_eq!(d[0], 1));
    }

    #[test]
    fn runs_to_completion() {
        let mut m = Machine::new(CoreConfig::single_threaded(), 10);
        let a = m.spawn("a", &counting_prog(3), 4);
        let b = m.spawn("b", &counting_prog(3), 4);
        let rotations = rotate_to_completion(&mut m, &[a, b], ThreadId(0), 1_000_000, 100);
        assert!(
            rotations <= 5,
            "should finish in ~4 rotations, took {rotations}"
        );
        m.with_state(a, |_, _, d| assert_eq!(d[0], 3));
        m.with_state(b, |_, _, d| assert_eq!(d[0], 3));
    }

    #[test]
    fn uneven_processes_finish_independently() {
        let mut m = Machine::new(CoreConfig::single_threaded(), 10);
        let a = m.spawn("short", &counting_prog(1), 4);
        let b = m.spawn("long", &counting_prog(4), 4);
        rotate_to_completion(&mut m, &[a, b], ThreadId(0), 1_000_000, 100);
        m.with_state(a, |_, _, d| assert_eq!(d[0], 1));
        m.with_state(b, |_, _, d| assert_eq!(d[0], 4));
    }
}
