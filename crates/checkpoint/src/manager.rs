//! Checkpoint policy and bookkeeping for a VDS.
//!
//! Tracks the round counter within the current checkpoint interval,
//! decides when a checkpoint is due (every `s` rounds, per the paper),
//! and owns the stable-storage slots for the versions.

use crate::snapshot::Snapshot;
use crate::storage::{StableStorage, StorageModel};

/// Checkpoint bookkeeping for a VDS running two active versions.
#[derive(Debug, Clone)]
pub struct CheckpointManager {
    /// Checkpoint interval `s` in rounds.
    s: u32,
    /// Rounds completed since the last checkpoint (the paper's `i` runs
    /// 1..=s; `rounds_since` is 0 right after a checkpoint).
    rounds_since: u32,
    storage: StableStorage,
    checkpoints_taken: u64,
}

impl CheckpointManager {
    /// A manager checkpointing every `s` rounds onto the given device.
    ///
    /// # Panics
    /// Panics if `s == 0`.
    pub fn new(s: u32, model: StorageModel) -> Self {
        assert!(s >= 1, "checkpoint interval must be at least 1 round");
        CheckpointManager {
            s,
            rounds_since: 0,
            // slot 0: version 1's state; slot 1: version 2's state.
            storage: StableStorage::new(model, 2),
            checkpoints_taken: 0,
        }
    }

    /// The checkpoint interval `s`.
    pub fn interval(&self) -> u32 {
        self.s
    }

    /// Rounds completed since the last checkpoint (0..=s).
    pub fn rounds_since_checkpoint(&self) -> u32 {
        self.rounds_since
    }

    /// Record a completed, successfully compared round. Returns `true`
    /// if a checkpoint is now due.
    pub fn round_completed(&mut self) -> bool {
        self.rounds_since += 1;
        self.rounds_since >= self.s
    }

    /// Write both versions' snapshots as the new checkpoint; resets the
    /// round counter. Returns the storage time cost.
    pub fn take_checkpoint(&mut self, v1: Snapshot, v2: Snapshot) -> f64 {
        let cost = self.storage.write(0, v1) + self.storage.write(1, v2);
        self.rounds_since = 0;
        self.checkpoints_taken += 1;
        cost
    }

    /// Read back the last checkpoint (`(v1, v2, time_cost)`), or `None`
    /// before the first checkpoint is taken.
    pub fn load_checkpoint(&mut self) -> Option<(Snapshot, Snapshot, f64)> {
        let (v1, c1) = self.storage.read(0)?;
        let (v2, c2) = self.storage.read(1)?;
        Some((v1, v2, c1 + c2))
    }

    /// Reset the interval counter without writing (used when recovery
    /// ends in a checkpoint of its own).
    pub fn reset_interval(&mut self) {
        self.rounds_since = 0;
    }

    /// Number of checkpoints written so far.
    pub fn checkpoints_taken(&self) -> u64 {
        self.checkpoints_taken
    }

    /// Total simulated time spent on storage operations.
    pub fn storage_time(&self) -> f64 {
        self.storage.time_spent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vds_smtsim::isa::Reg;

    fn snap(round: u64) -> Snapshot {
        Snapshot {
            regs: [0; Reg::COUNT],
            pc: 0,
            dmem: vec![round as u32; 8],
            round,
        }
    }

    #[test]
    fn due_every_s_rounds() {
        let mut m = CheckpointManager::new(3, StorageModel::nvram());
        assert!(!m.round_completed());
        assert!(!m.round_completed());
        assert!(m.round_completed());
        m.take_checkpoint(snap(3), snap(3));
        assert_eq!(m.rounds_since_checkpoint(), 0);
        assert!(!m.round_completed());
    }

    #[test]
    fn checkpoint_roundtrip() {
        let mut m = CheckpointManager::new(5, StorageModel::nvram());
        assert!(m.load_checkpoint().is_none());
        let cost = m.take_checkpoint(snap(5), snap(5));
        assert!(cost > 0.0);
        let (v1, v2, rcost) = m.load_checkpoint().unwrap();
        assert_eq!(v1.round, 5);
        assert_eq!(v2.round, 5);
        assert!(rcost > 0.0);
        assert_eq!(m.checkpoints_taken(), 1);
    }

    #[test]
    fn reset_interval() {
        let mut m = CheckpointManager::new(4, StorageModel::nvram());
        m.round_completed();
        m.round_completed();
        m.reset_interval();
        assert_eq!(m.rounds_since_checkpoint(), 0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_interval_rejected() {
        CheckpointManager::new(0, StorageModel::nvram());
    }
}
