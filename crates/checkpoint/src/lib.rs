#![warn(missing_docs)]

//! # vds-checkpoint — snapshots, digests and stable storage
//!
//! The VDS recovery protocol needs three substrate services the paper
//! assumes without building:
//!
//! 1. **State snapshots** ([`snapshot::Snapshot`]) — a version's complete
//!    architectural state, restorable after a rollback and copyable onto
//!    the spare version after recovery ("the state of the fault-free
//!    version is copied to version 3").
//! 2. **Fast state comparison** ([`digest`]) — rounds end with a state
//!    comparison of cost `t' ≪ t`; that is only plausible if versions are
//!    compared by digest rather than word-by-word. Because *diverse*
//!    versions differ in internal representation, comparison covers a
//!    declared **output window** of the address space, not raw state.
//! 3. **Stable storage** ([`storage::StableStorage`]) — checkpoints
//!    survive processor-stop faults; writing them is slow, which is why
//!    the paper checkpoints every `s` rounds but compares every round
//!    (the Ziv/Bruck-style trade examined in experiment E12).
//!
//! [`manager::CheckpointManager`] ties the three together for the VDS
//! engine in `vds-core`.

pub mod digest;
pub mod manager;
pub mod snapshot;
pub mod storage;

pub use manager::CheckpointManager;
pub use snapshot::Snapshot;
pub use storage::StableStorage;
