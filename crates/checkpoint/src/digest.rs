//! State digests.
//!
//! Two independent 64-bit hashes over word slices. The VDS state
//! comparison must never report "equal" for different outputs (a false
//! negative masks a fault), so [`StateDigest`] combines FNV-1a with a
//! second, structurally different mix — a corruption would need to collide
//! both 64-bit functions simultaneously to slip through. (Real systems use
//! cryptographic digests or word-wise comparison; for a simulator the
//! 128-bit combination is far beyond the experiment scales of 10⁴–10⁶
//! comparisons.)
//!
//! The implementation lives in `vds-obs` ([`vds_obs::journal`]) so the
//! flight-recorder journal — which sits below this crate in the dependency
//! stack — can stamp the same digests into its round entries. This module
//! re-exports it under the historical names; the algorithm and therefore
//! every digest value is unchanged.

/// A 128-bit state digest (two independent 64-bit halves). Alias of
/// [`vds_obs::Digest128`]; `Display` renders 32 hex characters.
pub type StateDigest = vds_obs::Digest128;

/// Incremental digest builder. Alias of [`vds_obs::Digester128`].
pub type Digester = vds_obs::Digester128;

/// One-shot digest of a word slice.
pub fn digest_words(ws: &[u32]) -> StateDigest {
    vds_obs::digest_words128(ws)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = digest_words(&[1, 2, 3]);
        let b = digest_words(&[1, 2, 3]);
        assert_eq!(a, b);
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(digest_words(&[1, 2, 3]), digest_words(&[3, 2, 1]));
    }

    #[test]
    fn single_bit_sensitivity() {
        let base = vec![0u32; 64];
        let d0 = digest_words(&base);
        for word in [0usize, 31, 63] {
            for bit in [0u32, 15, 31] {
                let mut v = base.clone();
                v[word] ^= 1 << bit;
                assert_ne!(digest_words(&v), d0, "word {word} bit {bit}");
            }
        }
    }

    #[test]
    fn length_aware() {
        assert_ne!(digest_words(&[0]), digest_words(&[0, 0]));
        assert_ne!(digest_words(&[]), digest_words(&[0]));
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut d = Digester::new();
        d.push_words(&[10, 20]);
        d.push_word(30);
        assert_eq!(d.finish(), digest_words(&[10, 20, 30]));
    }

    #[test]
    fn empty_digest_matches_helper() {
        assert_eq!(StateDigest::empty(), digest_words(&[]));
    }

    #[test]
    fn pinned_against_historical_algorithm() {
        // The delegation to vds-obs must not change any digest value:
        // recompute [1,2,3] with the original algorithm inline.
        let (mut fnv, mut mix) = (0xcbf2_9ce4_8422_2325u64, 0x9E37_79B9_7F4A_7C15u64);
        let push = |w: u32, fnv: &mut u64, mix: &mut u64| {
            for b in w.to_le_bytes() {
                *fnv ^= u64::from(b);
                *fnv = fnv.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut z = *mix ^ (u64::from(w)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^= z >> 27;
            z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
            *mix = z.rotate_left(17) ^ (z >> 31);
        };
        for w in [1u32, 2, 3] {
            push(w, &mut fnv, &mut mix);
        }
        // length-aware finish: count = 3
        push(3, &mut fnv, &mut mix);
        push(0, &mut fnv, &mut mix);
        let d = digest_words(&[1, 2, 3]);
        assert_eq!((d.fnv, d.mix), (fnv, mix));
    }

    #[test]
    fn no_collisions_in_small_sweep() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        // all single-word inputs 0..10_000 plus two-word combos
        for w in 0..10_000u32 {
            assert!(seen.insert(digest_words(&[w])), "collision at {w}");
        }
        for a in 0..100u32 {
            for b in 0..100u32 {
                assert!(seen.insert(digest_words(&[a, b])), "collision at [{a},{b}]");
            }
        }
    }
}
