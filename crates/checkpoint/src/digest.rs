//! State digests.
//!
//! Two independent 64-bit hashes over word slices. The VDS state
//! comparison must never report "equal" for different outputs (a false
//! negative masks a fault), so [`StateDigest`] combines FNV-1a with a
//! second, structurally different mix — a corruption would need to collide
//! both 64-bit functions simultaneously to slip through. (Real systems use
//! cryptographic digests or word-wise comparison; for a simulator the
//! 128-bit combination is far beyond the experiment scales of 10⁴–10⁶
//! comparisons.)

/// A 128-bit state digest (two independent 64-bit halves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StateDigest {
    /// FNV-1a half.
    pub fnv: u64,
    /// Mix half (splitmix-style avalanche over a running state).
    pub mix: u64,
}

impl StateDigest {
    /// Digest of an empty input.
    pub fn empty() -> Self {
        Digester::new().finish()
    }
}

impl std::fmt::Display for StateDigest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.fnv, self.mix)
    }
}

/// Incremental digest builder.
#[derive(Debug, Clone)]
pub struct Digester {
    fnv: u64,
    mix: u64,
    count: u64,
}

impl Default for Digester {
    fn default() -> Self {
        Self::new()
    }
}

impl Digester {
    /// Fresh digester.
    pub fn new() -> Self {
        Digester {
            fnv: 0xcbf2_9ce4_8422_2325,
            mix: 0x9E37_79B9_7F4A_7C15,
            count: 0,
        }
    }

    /// Absorb one 32-bit word.
    #[inline]
    pub fn push_word(&mut self, w: u32) {
        for b in w.to_le_bytes() {
            self.fnv ^= u64::from(b);
            self.fnv = self.fnv.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut z = self.mix ^ (u64::from(w)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 27;
        z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
        self.mix = z.rotate_left(17) ^ (z >> 31);
        self.count += 1;
    }

    /// Absorb a word slice.
    pub fn push_words(&mut self, ws: &[u32]) {
        for &w in ws {
            self.push_word(w);
        }
    }

    /// Finalise (length-aware, so prefixes don't collide with wholes).
    pub fn finish(&self) -> StateDigest {
        let mut d = self.clone();
        d.push_word(self.count as u32);
        d.push_word((self.count >> 32) as u32);
        StateDigest {
            fnv: d.fnv,
            mix: d.mix,
        }
    }
}

/// One-shot digest of a word slice.
pub fn digest_words(ws: &[u32]) -> StateDigest {
    let mut d = Digester::new();
    d.push_words(ws);
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = digest_words(&[1, 2, 3]);
        let b = digest_words(&[1, 2, 3]);
        assert_eq!(a, b);
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(digest_words(&[1, 2, 3]), digest_words(&[3, 2, 1]));
    }

    #[test]
    fn single_bit_sensitivity() {
        let base = vec![0u32; 64];
        let d0 = digest_words(&base);
        for word in [0usize, 31, 63] {
            for bit in [0u32, 15, 31] {
                let mut v = base.clone();
                v[word] ^= 1 << bit;
                assert_ne!(digest_words(&v), d0, "word {word} bit {bit}");
            }
        }
    }

    #[test]
    fn length_aware() {
        assert_ne!(digest_words(&[0]), digest_words(&[0, 0]));
        assert_ne!(digest_words(&[]), digest_words(&[0]));
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut d = Digester::new();
        d.push_words(&[10, 20]);
        d.push_word(30);
        assert_eq!(d.finish(), digest_words(&[10, 20, 30]));
    }

    #[test]
    fn no_collisions_in_small_sweep() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        // all single-word inputs 0..10_000 plus two-word combos
        for w in 0..10_000u32 {
            assert!(seen.insert(digest_words(&[w])), "collision at {w}");
        }
        for a in 0..100u32 {
            for b in 0..100u32 {
                assert!(seen.insert(digest_words(&[a, b])), "collision at [{a},{b}]");
            }
        }
    }
}
