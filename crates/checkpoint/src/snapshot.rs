//! Version state snapshots.

use crate::digest::{digest_words, Digester, StateDigest};
use std::ops::Range;
use vds_smtsim::core::{SavedContext, Thread, ThreadState};
use vds_smtsim::isa::Reg;
use vds_smtsim::program::Program;

/// A restorable snapshot of one version's architectural state, tagged
/// with the VDS round it was taken at.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Register file.
    pub regs: [u32; Reg::COUNT],
    /// Program counter.
    pub pc: u32,
    /// Data memory image.
    pub dmem: Vec<u32>,
    /// Round index (within the current checkpoint interval or global —
    /// the VDS engine decides the convention).
    pub round: u64,
}

impl Snapshot {
    /// Capture a snapshot from a live hardware thread.
    pub fn of_thread(t: &Thread, round: u64) -> Self {
        Snapshot {
            regs: t.regs,
            pc: t.pc,
            dmem: t.dmem.clone(),
            round,
        }
    }

    /// Capture from a saved (switched-out) context.
    pub fn of_context(c: &SavedContext, round: u64) -> Self {
        Snapshot {
            regs: c.regs,
            pc: c.pc,
            dmem: c.dmem.clone(),
            round,
        }
    }

    /// Convert into a context ready to be switched in, resuming in
    /// `Ready` state with the given program image.
    pub fn into_context(self, prog: Program) -> SavedContext {
        SavedContext {
            regs: self.regs,
            pc: self.pc,
            prog,
            dmem: self.dmem,
            state: ThreadState::Ready,
        }
    }

    /// Digest of the **full** state (registers, pc, all of memory) —
    /// used for checkpoint integrity, not for cross-version comparison.
    pub fn full_digest(&self) -> StateDigest {
        let mut d = Digester::new();
        d.push_words(&self.regs);
        d.push_word(self.pc);
        d.push_words(&self.dmem);
        d.finish()
    }

    /// Digest of an **output window** of data memory — the quantity two
    /// *diverse* versions must agree on. (Their registers, pc and private
    /// scratch memory legitimately differ.)
    pub fn output_digest(&self, window: Range<u32>) -> StateDigest {
        let lo = window.start as usize;
        let hi = (window.end as usize).min(self.dmem.len());
        digest_words(&self.dmem[lo.min(hi)..hi])
    }

    /// Size in words (for storage-cost accounting).
    pub fn size_words(&self) -> usize {
        self.dmem.len() + Reg::COUNT + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vds_smtsim::asm::assemble;
    use vds_smtsim::core::{Core, CoreConfig, RunOutcome, ThreadId};

    fn yielded_core(src: &str) -> Core {
        let prog = assemble(src).unwrap();
        let mut core = Core::new(CoreConfig::default());
        core.add_thread(&prog, 32);
        assert_eq!(core.run_until_all_blocked(100_000), RunOutcome::AllYielded);
        core
    }

    #[test]
    fn snapshot_captures_thread_state() {
        let core = yielded_core("addi r1, r0, 42\nst r1, 3(r0)\nyield\nhalt\n");
        let snap = Snapshot::of_thread(core.thread(ThreadId(0)), 1);
        assert_eq!(snap.regs[1], 42);
        assert_eq!(snap.dmem[3], 42);
        assert_eq!(snap.round, 1);
    }

    #[test]
    fn restore_resumes_exactly_where_saved() {
        let src = "addi r1, r0, 1\nyield\naddi r1, r1, 10\nhalt\n";
        let prog = assemble(src).unwrap();
        let mut core = Core::new(CoreConfig::default());
        let t = core.add_thread(&prog, 16);
        core.run_until_all_blocked(100_000);
        let snap = Snapshot::of_thread(core.thread(t), 0);

        // run to completion, then restore the snapshot and run again
        core.resume(t);
        core.run_until_all_blocked(100_000);
        assert_eq!(core.thread(t).regs[1], 11);

        core.swap_context(t, snap.into_context(prog));
        assert_eq!(core.run_until_all_blocked(100_000), RunOutcome::AllHalted);
        assert_eq!(core.thread(t).regs[1], 11, "replay reaches same result");
    }

    #[test]
    fn full_digest_differs_when_state_differs() {
        let core = yielded_core("addi r1, r0, 5\nyield\nhalt\n");
        let snap = Snapshot::of_thread(core.thread(ThreadId(0)), 0);
        let mut other = snap.clone();
        other.dmem[0] ^= 1;
        assert_ne!(snap.full_digest(), other.full_digest());
        other.dmem[0] ^= 1;
        other.regs[7] ^= 4;
        assert_ne!(snap.full_digest(), other.full_digest());
    }

    #[test]
    fn output_digest_ignores_private_state() {
        let core = yielded_core("addi r1, r0, 5\nst r1, 2(r0)\nyield\nhalt\n");
        let snap = Snapshot::of_thread(core.thread(ThreadId(0)), 0);
        let mut diverse = snap.clone();
        diverse.regs[1] = 999; // different internal representation
        diverse.pc += 7;
        diverse.dmem[10] = 123; // scratch outside the window
        assert_eq!(
            snap.output_digest(0..4),
            diverse.output_digest(0..4),
            "window digest must not see registers/pc/scratch"
        );
        let mut corrupted = snap.clone();
        corrupted.dmem[2] ^= 8;
        assert_ne!(snap.output_digest(0..4), corrupted.output_digest(0..4));
    }

    #[test]
    fn output_window_clamps_to_memory() {
        let core = yielded_core("yield\nhalt\n");
        let snap = Snapshot::of_thread(core.thread(ThreadId(0)), 0);
        // window beyond dmem end must not panic
        let _ = snap.output_digest(0..10_000);
        let _ = snap.output_digest(9_000..10_000);
    }

    #[test]
    fn size_words_accounts_everything() {
        let core = yielded_core("yield\nhalt\n");
        let snap = Snapshot::of_thread(core.thread(ThreadId(0)), 0);
        assert_eq!(snap.size_words(), 32 + 16 + 1);
    }
}
