//! Stable-storage model.
//!
//! The paper: "recovery is enabled by saving state to a disk from time to
//! time (checkpointing)" and "stable storage access for checkpointing is
//! relatively expensive — that is a reason for relatively long checkpoint
//! intervals." This module models such a device: an in-memory store whose
//! *costs* follow a simple latency model, so the VDS engine can charge
//! checkpoint time properly and experiment E12 can sweep the trade-off.
//!
//! Contents survive simulated processor-stop faults by construction (the
//! store lives outside the simulated core).

use crate::snapshot::Snapshot;

/// Latency model for the stable store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageModel {
    /// Fixed cost per operation (seek/sync), in abstract time units.
    pub base_cost: f64,
    /// Additional cost per word transferred.
    pub per_word_cost: f64,
}

impl StorageModel {
    /// A disk-like default: large fixed cost, small per-word cost.
    pub fn disk() -> Self {
        StorageModel {
            base_cost: 5.0,
            per_word_cost: 0.002,
        }
    }

    /// A battery-backed-RAM-like device: cheap but not free.
    pub fn nvram() -> Self {
        StorageModel {
            base_cost: 0.2,
            per_word_cost: 0.0005,
        }
    }

    /// Cost of transferring `words` words.
    pub fn cost(&self, words: usize) -> f64 {
        self.base_cost + self.per_word_cost * words as f64
    }
}

/// A checkpoint slot identifier (one per version).
pub type SlotId = usize;

/// The stable store: one checkpoint slot per version, plus history
/// counters for the experiments.
#[derive(Debug, Clone)]
pub struct StableStorage {
    model: StorageModel,
    slots: Vec<Option<Snapshot>>,
    writes: u64,
    reads: u64,
    time_spent: f64,
}

impl StableStorage {
    /// A store with `slots` checkpoint slots.
    pub fn new(model: StorageModel, slots: usize) -> Self {
        StableStorage {
            model,
            slots: vec![None; slots],
            writes: 0,
            reads: 0,
            time_spent: 0.0,
        }
    }

    /// Write a checkpoint into `slot`, replacing any previous one.
    /// Returns the time the write costs.
    ///
    /// # Panics
    /// Panics on an out-of-range slot.
    pub fn write(&mut self, slot: SlotId, snap: Snapshot) -> f64 {
        let cost = self.model.cost(snap.size_words());
        self.slots[slot] = Some(snap);
        self.writes += 1;
        self.time_spent += cost;
        cost
    }

    /// Read the checkpoint in `slot` (cloned — the store keeps its copy).
    /// Returns the snapshot and the time the read costs, or `None` if the
    /// slot is empty.
    pub fn read(&mut self, slot: SlotId) -> Option<(Snapshot, f64)> {
        let snap = self.slots.get(slot)?.clone()?;
        let cost = self.model.cost(snap.size_words());
        self.reads += 1;
        self.time_spent += cost;
        Some((snap, cost))
    }

    /// Peek without cost accounting (host-side assertions, tests).
    pub fn peek(&self, slot: SlotId) -> Option<&Snapshot> {
        self.slots.get(slot)?.as_ref()
    }

    /// Number of writes performed.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Number of reads performed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total simulated time spent in storage operations.
    pub fn time_spent(&self) -> f64 {
        self.time_spent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vds_smtsim::isa::Reg;

    fn snap(round: u64, words: usize) -> Snapshot {
        Snapshot {
            regs: [0; Reg::COUNT],
            pc: 0,
            dmem: vec![7; words],
            round,
        }
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut s = StableStorage::new(StorageModel::disk(), 3);
        let w = s.write(1, snap(4, 100));
        assert!(w > 5.0);
        let (got, r) = s.read(1).unwrap();
        assert_eq!(got.round, 4);
        assert!(r > 0.0);
        assert_eq!(s.writes(), 1);
        assert_eq!(s.reads(), 1);
        assert!((s.time_spent() - (w + r)).abs() < 1e-12);
    }

    #[test]
    fn empty_slot_reads_none() {
        let mut s = StableStorage::new(StorageModel::nvram(), 2);
        assert!(s.read(0).is_none());
        assert!(s.peek(0).is_none());
    }

    #[test]
    fn overwrite_replaces() {
        let mut s = StableStorage::new(StorageModel::nvram(), 1);
        s.write(0, snap(1, 10));
        s.write(0, snap(2, 10));
        assert_eq!(s.peek(0).unwrap().round, 2);
    }

    #[test]
    fn cost_scales_with_size() {
        let m = StorageModel::disk();
        assert!(m.cost(10_000) > m.cost(10));
        let mut s = StableStorage::new(m, 2);
        let small = s.write(0, snap(0, 10));
        let large = s.write(1, snap(0, 10_000));
        assert!(large > small);
    }

    #[test]
    fn nvram_cheaper_than_disk() {
        assert!(StorageModel::nvram().cost(1000) < StorageModel::disk().cost(1000));
    }
}
