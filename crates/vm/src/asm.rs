//! Deterministic two-pass assembler for the tiny text format.
//!
//! Syntax, one item per line:
//!
//! ```text
//! ; comment (also `#`)
//! label:                  ; labels stand alone on their line
//!     lit   r1, 0x9E3779B9
//!     add   r0, r1, r2
//!     cmplt r3, r1, r2
//!     jnz   r3, label
//!     call  fn
//!     ld    r4, r5        ; r4 = mem[r5]
//!     st    r5, r4        ; mem[r5] = r4
//!     halt
//! ```
//!
//! Determinism contract: literals are interned into the pool in first
//! appearance order, labels are resolved in a fixed two-pass sweep, and
//! no hashing or host iteration order is involved anywhere — the same
//! source always yields the same `Program`, byte for byte.

use crate::isa::{AluOp, Instr};

/// An assembled program: decoded code plus its literal pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    /// Program name (journal metadata, listings).
    pub name: String,
    /// Decoded instruction stream.
    pub code: Vec<Instr>,
    /// Literal pool, first-appearance order.
    pub lits: Vec<u32>,
}

impl Program {
    /// Canonical 32-bit encoding of the instruction stream.
    #[must_use]
    pub fn encode_words(&self) -> Vec<u32> {
        self.code.iter().map(|i| i.encode()).collect()
    }

    /// Human-readable listing with pc, encoded word, and mnemonic —
    /// the body of `vds vm asm`.
    #[must_use]
    pub fn listing(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "; {} — {} instrs, {} literals\n",
            self.name,
            self.code.len(),
            self.lits.len()
        ));
        for (pc, instr) in self.code.iter().enumerate() {
            out.push_str(&format!(
                "{pc:4}  {:08x}  {}\n",
                instr.encode(),
                instr.render()
            ));
        }
        if !self.lits.is_empty() {
            out.push_str("; literal pool\n");
            for (i, lit) in self.lits.iter().enumerate() {
                out.push_str(&format!("{i:4}  0x{lit:08x}  ({lit})\n"));
            }
        }
        out
    }
}

/// Assembly failure with a 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        msg: msg.into(),
    })
}

fn strip_comment(line: &str) -> &str {
    match line.find([';', '#']) {
        Some(i) => &line[..i],
        None => line,
    }
}

fn is_label_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_reg(tok: &str, line: usize) -> Result<u8, AsmError> {
    let Some(num) = tok.strip_prefix('r') else {
        return err(line, format!("expected register, got `{tok}`"));
    };
    match num.parse::<u16>() {
        Ok(n) if n < 256 => Ok(n as u8),
        _ => err(line, format!("bad register `{tok}` (r0..r255)")),
    }
}

fn parse_imm(tok: &str, line: usize) -> Result<u32, AsmError> {
    let parsed = if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).ok()
    } else if let Some(neg) = tok.strip_prefix('-') {
        neg.parse::<u32>().ok().map(u32::wrapping_neg)
    } else {
        tok.parse::<u32>().ok()
    };
    match parsed {
        Some(v) => Ok(v),
        None => err(line, format!("bad literal `{tok}`")),
    }
}

/// Assemble source text into a [`Program`].
pub fn assemble(name: &str, src: &str) -> Result<Program, AsmError> {
    // pass 1: map labels to instruction indexes
    let mut labels: Vec<(String, u16)> = Vec::new();
    let mut pc: usize = 0;
    for (n, raw) in src.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            let label = label.trim();
            if !is_label_name(label) {
                return err(n + 1, format!("bad label `{label}`"));
            }
            if labels.iter().any(|(l, _)| l == label) {
                return err(n + 1, format!("duplicate label `{label}`"));
            }
            if pc > usize::from(u16::MAX) {
                return err(n + 1, "program too large");
            }
            labels.push((label.to_string(), pc as u16));
        } else {
            pc += 1;
        }
    }
    if pc > usize::from(u16::MAX) {
        return err(src.lines().count(), "program too large");
    }

    let find_label = |tok: &str, line: usize| -> Result<u16, AsmError> {
        match labels.iter().find(|(l, _)| l == tok) {
            Some((_, t)) => Ok(*t),
            None => err(line, format!("unknown label `{tok}`")),
        }
    };

    // pass 2: encode, interning literals in first-appearance order
    let mut code: Vec<Instr> = Vec::new();
    let mut lits: Vec<u32> = Vec::new();
    let mut intern = |v: u32, line: usize| -> Result<u16, AsmError> {
        if let Some(i) = lits.iter().position(|&x| x == v) {
            return Ok(i as u16);
        }
        if lits.len() > usize::from(u16::MAX) {
            return err(line, "literal pool overflow");
        }
        lits.push(v);
        Ok((lits.len() - 1) as u16)
    };
    for (n, raw) in src.lines().enumerate() {
        let n = n + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() || line.ends_with(':') {
            continue;
        }
        let spaced = line.replace(',', " ");
        let toks: Vec<&str> = spaced.split_whitespace().collect();
        let args = &toks[1..];
        let mnem = toks[0];
        let need = |k: usize| -> Result<(), AsmError> {
            if args.len() == k {
                Ok(())
            } else {
                err(
                    n,
                    format!("`{mnem}` takes {k} operand(s), got {}", args.len()),
                )
            }
        };
        let instr = match mnem {
            "halt" => {
                need(0)?;
                Instr::Halt
            }
            "lit" => {
                need(2)?;
                let d = parse_reg(args[0], n)?;
                let idx = intern(parse_imm(args[1], n)?, n)?;
                Instr::LoadLit { d, idx }
            }
            "mov" => {
                need(2)?;
                Instr::Mov {
                    d: parse_reg(args[0], n)?,
                    s: parse_reg(args[1], n)?,
                }
            }
            "add" | "sub" | "mul" | "xor" | "and" | "or" | "shl" | "shr" => {
                need(3)?;
                let op = match mnem {
                    "add" => AluOp::Add,
                    "sub" => AluOp::Sub,
                    "mul" => AluOp::Mul,
                    "xor" => AluOp::Xor,
                    "and" => AluOp::And,
                    "or" => AluOp::Or,
                    "shl" => AluOp::Shl,
                    _ => AluOp::Shr,
                };
                Instr::Alu {
                    op,
                    d: parse_reg(args[0], n)?,
                    a: parse_reg(args[1], n)?,
                    b: parse_reg(args[2], n)?,
                }
            }
            "cmplt" => {
                need(3)?;
                Instr::CmpLt {
                    d: parse_reg(args[0], n)?,
                    a: parse_reg(args[1], n)?,
                    b: parse_reg(args[2], n)?,
                }
            }
            "cmpeq" => {
                need(3)?;
                Instr::CmpEq {
                    d: parse_reg(args[0], n)?,
                    a: parse_reg(args[1], n)?,
                    b: parse_reg(args[2], n)?,
                }
            }
            "jmp" => {
                need(1)?;
                Instr::Jmp {
                    target: find_label(args[0], n)?,
                }
            }
            "jnz" => {
                need(2)?;
                Instr::Jnz {
                    s: parse_reg(args[0], n)?,
                    target: find_label(args[1], n)?,
                }
            }
            "jz" => {
                need(2)?;
                Instr::Jz {
                    s: parse_reg(args[0], n)?,
                    target: find_label(args[1], n)?,
                }
            }
            "call" => {
                need(1)?;
                Instr::Call {
                    target: find_label(args[0], n)?,
                }
            }
            "ret" => {
                need(0)?;
                Instr::Ret
            }
            "ld" => {
                need(2)?;
                Instr::Ld {
                    d: parse_reg(args[0], n)?,
                    a: parse_reg(args[1], n)?,
                }
            }
            "st" => {
                need(2)?;
                Instr::St {
                    a: parse_reg(args[0], n)?,
                    s: parse_reg(args[1], n)?,
                }
            }
            other => return err(n, format!("unknown mnemonic `{other}`")),
        };
        code.push(instr);
    }
    if code.is_empty() {
        return err(1, "empty program");
    }
    Ok(Program {
        name: name.to_string(),
        code,
        lits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_intern_in_first_appearance_order() {
        let p = assemble(
            "t",
            "lit r0, 10\nlit r1, 20\nlit r2, 10\nlit r3, 0x1e\nhalt\n",
        )
        .unwrap();
        assert_eq!(p.lits, vec![10, 20, 30]);
        assert_eq!(
            p.code[2],
            Instr::LoadLit { d: 2, idx: 0 },
            "repeated literal reuses the pool slot"
        );
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let p = assemble(
            "t",
            "start:\njmp end\nmid:\njmp start\nend:\njmp mid\nhalt\n",
        )
        .unwrap();
        assert_eq!(
            p.code,
            vec![
                Instr::Jmp { target: 2 },
                Instr::Jmp { target: 0 },
                Instr::Jmp { target: 1 },
                Instr::Halt,
            ]
        );
    }

    #[test]
    fn negative_and_hex_literals() {
        let p = assemble("t", "lit r0, -1\nlit r1, 0xFFFFFFFF\nhalt\n").unwrap();
        assert_eq!(p.lits, vec![u32::MAX]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases: &[(&str, usize, &str)] = &[
            ("halt\nfrob r0\n", 2, "unknown mnemonic"),
            ("add r0, r1\n", 1, "takes 3 operand(s)"),
            ("lit r0, zebra\n", 1, "bad literal"),
            ("mov r0, x1\n", 1, "expected register"),
            ("jmp missing\n", 1, "unknown label"),
            ("a:\na:\nhalt\n", 2, "duplicate label"),
            ("lit r999, 1\n", 1, "bad register"),
            ("", 1, "empty program"),
        ];
        for (src, line, want) in cases {
            let e = assemble("t", src).unwrap_err();
            assert_eq!(e.line, *line, "{src:?}: {e}");
            assert!(e.msg.contains(want), "{src:?}: {e}");
        }
    }

    #[test]
    fn assembly_is_deterministic() {
        let src = crate::seed_program("sort").unwrap().asm;
        let a = assemble("sort", src).unwrap();
        let b = assemble("sort", src).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.encode_words(), b.encode_words());
    }

    #[test]
    fn listing_covers_code_and_pool() {
        let p = assemble("t", "lit r0, 42\nhalt\n").unwrap();
        let l = p.listing();
        assert!(l.contains("lit   r0, [0]"), "{l}");
        assert!(l.contains("halt"), "{l}");
        assert!(l.contains("0x0000002a"), "{l}");
    }
}
