//! The seed workloads: four small programs exercising distinct
//! architectural behavior, each paired with a pure-Rust oracle that
//! reproduces its full data-memory effect round by round.
//!
//! Shared data-memory layout (word addresses):
//!
//! | range    | meaning                                              |
//! |----------|------------------------------------------------------|
//! | `0`      | round counter, written by the harness at round entry |
//! | `1..9`   | persistent state `S[0..8]` (seed-perturbed)          |
//! | `9..16`  | per-round outputs                                    |
//! | `16..48` | working area (checksum table, sort array, matrices)  |
//! | `48..56` | strhash's persistent packed string                   |
//! | `56..64` | dead padding — never read, never digested: the       |
//! |          | canonical escape target for injected memory faults   |
//!
//! The duplex digest covers `r0..r3` plus `mem[0..16]`
//! ([`STATE_WINDOW`]), so any state-affecting divergence between
//! variants surfaces the round it reaches state or outputs, while
//! padding corruption can only be caught by the end-of-run oracle
//! check — exactly the masked/latent/escaped taxonomy the fault
//! forensics layer measures.

use crate::asm::{assemble, Program};
use crate::interp::DMEM_WORDS;

/// Data-memory address of the round counter.
pub const ADDR_ROUND: usize = 0;
/// First word of the 8-word persistent state.
pub const ADDR_STATE: usize = 1;
/// Words covered by the per-round duplex digest (with `r0..r3`).
pub const STATE_WINDOW: std::ops::Range<usize> = 0..16;
/// Output registers covered by the per-round duplex digest.
pub const DIGEST_REGS: usize = 4;

/// Checksum lookup table base (read-only at run time).
pub const TABLE_BASE: usize = 16;
/// Strhash packed-string base.
pub const STR_BASE: usize = 48;
/// Dead padding base — initialized once, never read again.
pub const PAD_BASE: usize = 56;

/// One seed workload: assembly source plus its oracle.
pub struct SeedProgram {
    /// Stable name (`vds vm run <name>`, journal metadata).
    pub name: &'static str,
    /// One-line description for listings.
    pub title: &'static str,
    /// Assembly source.
    pub asm: &'static str,
    oracle_fn: fn(&mut [u32]),
    extra_init: fn(&mut [u32]),
}

impl SeedProgram {
    /// Assemble the source. Seed programs are static invariants; every
    /// one is covered by a test, so failure here is a crate bug.
    #[must_use]
    pub fn assembled(&self) -> Program {
        assemble(self.name, self.asm).expect("seed program assembles")
    }

    /// Initial data memory for the given run seed: state words are
    /// perturbed by the seed so distinct runs take distinct
    /// trajectories, while layout and constants stay fixed.
    #[must_use]
    pub fn initial_dmem(&self, seed: u64) -> Vec<u32> {
        let mut m = vec![0u32; DMEM_WORDS];
        let lo = seed as u32;
        let hi = (seed >> 32) as u32;
        for i in 0..8 {
            let i32u = i as u32;
            m[ADDR_STATE + i] = (i32u + 1).wrapping_mul(0x9E37_79B9)
                ^ lo.rotate_left(i32u * 4)
                ^ hi.wrapping_mul(i32u + 1);
        }
        for i in 0..16 {
            m[TABLE_BASE + i] = (i as u32).wrapping_mul(0x85EB_CA6B) ^ 0xC0DE_1234;
        }
        for (i, w) in m[PAD_BASE..].iter_mut().enumerate() {
            *w = 0xC0DE_0000 + (PAD_BASE + i) as u32;
        }
        (self.extra_init)(&mut m);
        m
    }

    /// Apply one round's full data-memory effect in pure Rust. The
    /// caller must have set `mem[ADDR_ROUND]` first, mirroring
    /// [`crate::run_round`].
    pub fn oracle_step(&self, mem: &mut [u32]) {
        (self.oracle_fn)(mem);
    }

    /// Full-run oracle: the exact data memory after `rounds` clean
    /// rounds from the seeded initial memory.
    #[must_use]
    pub fn oracle(&self, seed: u64, rounds: u32) -> Vec<u32> {
        let mut mem = self.initial_dmem(seed);
        for round in 1..=rounds {
            mem[ADDR_ROUND] = round;
            (self.oracle_fn)(&mut mem);
        }
        mem
    }
}

/// Look up a seed program by name.
#[must_use]
pub fn seed_program(name: &str) -> Option<&'static SeedProgram> {
    SEED_PROGRAMS.iter().find(|p| p.name == name)
}

/// All seed programs, in canonical order.
pub const SEED_PROGRAMS: &[SeedProgram] = &[CHECKSUM, SORT, MATMUL, STRHASH];

fn no_extra_init(_: &mut [u32]) {}

// ---------------------------------------------------------------- checksum

const CHECKSUM: SeedProgram = SeedProgram {
    name: "checksum",
    title: "table-driven state mix, one helper call per element",
    asm: "\
; S[i] = mix(S[i] + T[(S[i] ^ round) & 15]); acc ^= S[i]
        lit   r6, 0
        ld    r5, r6          ; acc = round
        lit   r4, 0           ; i = 0
loop:
        lit   r6, 1
        add   r6, r6, r4      ; r6 = &S[i]
        ld    r7, r6          ; r7 = S[i]
        lit   r2, 0
        ld    r2, r2          ; r2 = round
        xor   r2, r7, r2
        lit   r3, 15
        and   r2, r2, r3      ; table index
        lit   r3, 16
        add   r2, r2, r3
        ld    r2, r2          ; r2 = T[index]
        add   r8, r7, r2      ; arg = S[i] + t
        call  mix
        xor   r5, r5, r8      ; acc ^= mixed
        st    r6, r8          ; S[i] = mixed
        lit   r7, 1
        add   r4, r4, r7
        lit   r7, 8
        cmplt r7, r4, r7
        jnz   r7, loop
        lit   r6, 9
        st    r6, r5          ; out: mem[9] = acc
        mov   r0, r5
        lit   r6, 1
        ld    r1, r6
        lit   r6, 5
        ld    r2, r6
        lit   r6, 8
        ld    r3, r6
        halt
mix:
        lit   r4, 13
        shl   r5, r0, r4
        xor   r0, r0, r5
        lit   r4, 0x9E3779B9
        add   r0, r0, r4
        lit   r4, 7
        shr   r5, r0, r4
        xor   r0, r0, r5
        ret
",
    oracle_fn: checksum_step,
    extra_init: no_extra_init,
};

fn mix(x: u32) -> u32 {
    let x = x ^ (x << 13);
    let x = x.wrapping_add(0x9E37_79B9);
    x ^ (x >> 7)
}

fn checksum_step(mem: &mut [u32]) {
    let round = mem[ADDR_ROUND];
    let mut acc = round;
    for i in 0..8 {
        let s = mem[ADDR_STATE + i];
        let t = mem[TABLE_BASE + ((s ^ round) & 15) as usize];
        let m = mix(s.wrapping_add(t));
        acc ^= m;
        mem[ADDR_STATE + i] = m;
    }
    mem[9] = acc;
}

// -------------------------------------------------------------------- sort

const SORT: SeedProgram = SeedProgram {
    name: "sort",
    title: "LCG-filled 32-word insertion sort, extremes folded into state",
    asm: "\
; regenerate a[0..32] from (round ^ S[0]) via an LCG, insertion-sort,
; fold a[i]/a[31-i] back into S
        lit   r6, 0
        ld    r7, r6          ; round
        lit   r6, 1
        ld    r6, r6          ; S[0]
        xor   r7, r7, r6      ; x
        lit   r4, 0           ; i
gen:
        lit   r2, 1664525
        mul   r7, r7, r2
        lit   r2, 1013904223
        add   r7, r7, r2
        lit   r6, 16
        add   r6, r6, r4
        st    r6, r7          ; a[i] = x
        lit   r2, 1
        add   r4, r4, r2
        lit   r2, 32
        cmplt r2, r4, r2
        jnz   r2, gen
        lit   r4, 1           ; i = 1
outer:
        lit   r6, 16
        add   r6, r6, r4
        ld    r7, r6          ; key = a[i]
        mov   r5, r4          ; j = i
inner:
        jz    r5, place
        lit   r2, 16
        add   r2, r2, r5
        lit   r3, 1
        sub   r2, r2, r3      ; &a[j-1]
        ld    r3, r2          ; a[j-1]
        cmplt r3, r7, r3      ; key < a[j-1]?
        jz    r3, place
        ld    r3, r2          ; a[j-1] again
        lit   r6, 1
        add   r2, r2, r6      ; &a[j]
        st    r2, r3          ; a[j] = a[j-1]
        lit   r6, 1
        sub   r5, r5, r6      ; j--
        jmp   inner
place:
        lit   r2, 16
        add   r2, r2, r5
        st    r2, r7          ; a[j] = key
        lit   r2, 1
        add   r4, r4, r2
        lit   r2, 32
        cmplt r2, r4, r2
        jnz   r2, outer
        lit   r4, 0
fold:
        lit   r6, 1
        add   r6, r6, r4      ; &S[i]
        ld    r7, r6
        lit   r2, 16
        add   r2, r2, r4
        ld    r2, r2          ; a[i]
        xor   r7, r7, r2
        lit   r2, 47
        sub   r2, r2, r4
        ld    r2, r2          ; a[31-i]
        add   r7, r7, r2
        st    r6, r7
        lit   r2, 1
        add   r4, r4, r2
        lit   r2, 8
        cmplt r2, r4, r2
        jnz   r2, fold
        lit   r6, 16
        ld    r0, r6          ; min
        lit   r6, 47
        ld    r1, r6          ; max
        lit   r6, 9
        st    r6, r0
        lit   r6, 10
        st    r6, r1
        lit   r6, 1
        ld    r2, r6
        lit   r6, 8
        ld    r3, r6
        halt
",
    oracle_fn: sort_step,
    extra_init: no_extra_init,
};

fn sort_step(mem: &mut [u32]) {
    let mut x = mem[ADDR_ROUND] ^ mem[ADDR_STATE];
    for i in 0..32 {
        x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        mem[16 + i] = x;
    }
    for i in 1..32 {
        let key = mem[16 + i];
        let mut j = i;
        while j > 0 && key < mem[16 + j - 1] {
            mem[16 + j] = mem[16 + j - 1];
            j -= 1;
        }
        mem[16 + j] = key;
    }
    for i in 0..8 {
        mem[ADDR_STATE + i] = (mem[ADDR_STATE + i] ^ mem[16 + i]).wrapping_add(mem[47 - i]);
    }
    mem[9] = mem[16];
    mem[10] = mem[47];
}

// ------------------------------------------------------------------ matmul

const MATMUL: SeedProgram = SeedProgram {
    name: "matmul",
    title: "3x3 matrix product over state-derived matrices, dot-product helper",
    asm: "\
; A (16..25) and B (25..34) derive from state+round; C = A*B (34..43)
; via a dot-product helper; C folds back into the state
        lit   r6, 0
        ld    r3, r6          ; round, held in r3 until the outputs
        lit   r4, 0           ; k
gena:
        lit   r2, 7
        and   r2, r4, r2
        lit   r6, 1
        add   r2, r2, r6
        ld    r2, r2          ; S[k & 7]
        lit   r6, 0x9E3779B1
        mul   r7, r3, r6
        add   r7, r7, r4
        xor   r7, r2, r7
        lit   r6, 16
        add   r6, r6, r4
        st    r6, r7          ; A[k]
        lit   r6, 1
        add   r4, r4, r6
        lit   r6, 9
        cmplt r6, r4, r6
        jnz   r6, gena
        lit   r4, 0
genb:
        lit   r2, 3
        add   r2, r4, r2
        lit   r6, 7
        and   r2, r2, r6
        lit   r6, 1
        add   r2, r2, r6
        ld    r2, r2          ; S[(k+3) & 7]
        lit   r6, 0x85EBCA6B
        mul   r7, r4, r6
        xor   r7, r3, r7
        add   r7, r2, r7
        lit   r6, 25
        add   r6, r6, r4
        st    r6, r7          ; B[k]
        lit   r6, 1
        add   r4, r4, r6
        lit   r6, 9
        cmplt r6, r4, r6
        jnz   r6, genb
        lit   r4, 0           ; i
mmi:
        lit   r5, 0           ; j
mmj:
        lit   r2, 3
        mul   r2, r4, r2
        lit   r6, 16
        add   r8, r2, r6      ; arg: &A[i][0]
        lit   r6, 25
        add   r9, r5, r6      ; arg: &B[0][j]
        call  dot
        lit   r2, 3
        mul   r2, r4, r2
        add   r2, r2, r5
        lit   r6, 34
        add   r2, r2, r6      ; &C[i][j]
        st    r2, r8
        lit   r6, 1
        add   r5, r5, r6
        lit   r6, 3
        cmplt r6, r5, r6
        jnz   r6, mmj
        lit   r6, 1
        add   r4, r4, r6
        lit   r6, 3
        cmplt r6, r4, r6
        jnz   r6, mmi
        lit   r4, 0
mfold:
        lit   r6, 1
        add   r6, r6, r4
        ld    r7, r6
        lit   r2, 34
        add   r2, r2, r4
        ld    r2, r2          ; C[i]
        xor   r7, r7, r2
        st    r6, r7          ; S[i] ^= C[i]
        lit   r2, 1
        add   r4, r4, r2
        lit   r2, 8
        cmplt r2, r4, r2
        jnz   r2, mfold
        lit   r6, 42
        ld    r7, r6          ; C[8]
        lit   r6, 1
        ld    r2, r6
        add   r2, r2, r7
        st    r6, r2          ; S[0] += C[8]
        lit   r6, 34
        ld    r0, r6
        lit   r6, 42
        ld    r1, r6
        lit   r6, 9
        st    r6, r0
        lit   r6, 10
        st    r6, r1
        lit   r6, 1
        ld    r2, r6
        lit   r6, 8
        ld    r3, r6
        halt
dot:
        ld    r4, r0          ; A[i][0]   (args arrive in r0/r1)
        ld    r5, r1          ; B[0][j]
        mul   r6, r4, r5
        lit   r7, 1
        add   r0, r0, r7
        lit   r7, 3
        add   r1, r1, r7
        ld    r4, r0
        ld    r5, r1
        mul   r4, r4, r5
        add   r6, r6, r4
        lit   r7, 1
        add   r0, r0, r7
        lit   r7, 3
        add   r1, r1, r7
        ld    r4, r0
        ld    r5, r1
        mul   r4, r4, r5
        add   r0, r6, r4      ; result returns in caller r8
        ret
",
    oracle_fn: matmul_step,
    extra_init: no_extra_init,
};

fn matmul_step(mem: &mut [u32]) {
    let round = mem[ADDR_ROUND];
    for k in 0..9u32 {
        mem[16 + k as usize] =
            mem[ADDR_STATE + (k & 7) as usize] ^ round.wrapping_mul(0x9E37_79B1).wrapping_add(k);
    }
    for k in 0..9u32 {
        mem[25 + k as usize] = mem[ADDR_STATE + ((k + 3) & 7) as usize]
            .wrapping_add(round ^ k.wrapping_mul(0x85EB_CA6B));
    }
    for i in 0..3 {
        for j in 0..3 {
            let mut acc = 0u32;
            for k in 0..3 {
                acc = acc.wrapping_add(mem[16 + 3 * i + k].wrapping_mul(mem[25 + 3 * k + j]));
            }
            mem[34 + 3 * i + j] = acc;
        }
    }
    for i in 0..8 {
        mem[ADDR_STATE + i] ^= mem[34 + i];
    }
    mem[ADDR_STATE] = mem[ADDR_STATE].wrapping_add(mem[42]);
    mem[9] = mem[34];
    mem[10] = mem[42];
}

// ----------------------------------------------------------------- strhash

const STRHASH: SeedProgram = SeedProgram {
    name: "strhash",
    title: "FNV-1a over a persistent packed string, self-mutating",
    asm: "\
; h = fnv1a(string at 48..56, seeded with round); fold h into S;
; mutate one string word so corruption there persists across rounds
        lit   r6, 0
        ld    r7, r6
        lit   r6, 2166136261
        xor   r7, r7, r6      ; h
        lit   r4, 0           ; w
hw:
        lit   r6, 48
        add   r6, r6, r4
        ld    r2, r6          ; x = string[w]
        lit   r5, 0           ; b
hb:
        lit   r6, 3
        shl   r6, r5, r6      ; 8*b
        shr   r3, r2, r6
        lit   r6, 255
        and   r3, r3, r6      ; byte
        xor   r7, r7, r3
        lit   r6, 16777619
        mul   r7, r7, r6
        lit   r6, 1
        add   r5, r5, r6
        lit   r6, 4
        cmplt r6, r5, r6
        jnz   r6, hb
        lit   r6, 1
        add   r4, r4, r6
        lit   r6, 8
        cmplt r6, r4, r6
        jnz   r6, hw
        lit   r4, 0
sf:
        lit   r6, 1
        add   r6, r6, r4      ; &S[i]
        ld    r2, r6
        lit   r3, 0x9E3779B9
        mul   r3, r4, r3
        xor   r3, r3, r7
        add   r2, r2, r3
        st    r6, r2          ; S[i] += (i*phi) ^ h
        lit   r3, 1
        add   r4, r4, r3
        lit   r3, 8
        cmplt r3, r4, r3
        jnz   r3, sf
        lit   r6, 0
        ld    r2, r6          ; round
        lit   r6, 7
        and   r2, r2, r6
        lit   r6, 48
        add   r2, r2, r6      ; &string[round & 7]
        ld    r3, r2
        add   r3, r3, r7
        st    r2, r3          ; string[round & 7] += h
        mov   r0, r7
        lit   r6, 9
        st    r6, r7          ; out: mem[9] = h
        lit   r6, 1
        ld    r1, r6
        lit   r6, 8
        ld    r2, r6
        lit   r6, 53
        ld    r3, r6
        halt
",
    oracle_fn: strhash_step,
    extra_init: strhash_init,
};

fn strhash_init(mem: &mut [u32]) {
    const TEXT: &[u8; 32] = b"virtual-duplex-on-smt:vds-vm-01!";
    for w in 0..8 {
        let b = &TEXT[w * 4..w * 4 + 4];
        mem[STR_BASE + w] = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
    }
}

fn strhash_step(mem: &mut [u32]) {
    let round = mem[ADDR_ROUND];
    let mut h = 2_166_136_261u32 ^ round;
    for w in 0..8 {
        let x = mem[STR_BASE + w];
        for b in 0..4 {
            let byte = (x >> (8 * b)) & 0xff;
            h = (h ^ byte).wrapping_mul(16_777_619);
        }
    }
    for i in 0..8 {
        mem[ADDR_STATE + i] =
            mem[ADDR_STATE + i].wrapping_add((i as u32).wrapping_mul(0x9E37_79B9) ^ h);
    }
    let idx = STR_BASE + (round & 7) as usize;
    mem[idx] = mem[idx].wrapping_add(h);
    mem[9] = h;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Outcome, Vm};
    use crate::run_round;

    #[test]
    fn every_seed_program_assembles() {
        for p in SEED_PROGRAMS {
            let prog = p.assembled();
            assert!(!prog.code.is_empty(), "{}", p.name);
            assert!(!prog.lits.is_empty(), "{}", p.name);
        }
        assert_eq!(SEED_PROGRAMS.len(), 4);
        assert!(seed_program("checksum").is_some());
        assert!(seed_program("nope").is_none());
    }

    #[test]
    fn vm_execution_matches_the_oracle_word_for_word() {
        for p in SEED_PROGRAMS {
            for seed in [0u64, 7, 0xDEAD_BEEF_CAFE] {
                let prog = p.assembled();
                let mut vm = Vm::with_mem(p.initial_dmem(seed));
                for round in 1..=12u32 {
                    let r = run_round(&mut vm, &prog, round, None);
                    assert_eq!(
                        r.outcome,
                        Outcome::Halted,
                        "{} seed {seed} round {round}: {r:?}",
                        p.name
                    );
                }
                let want = p.oracle(seed, 12);
                assert_eq!(vm.mem, want, "{} seed {seed}: dmem diverged", p.name);
            }
        }
    }

    #[test]
    fn rounds_are_cheap_relative_to_the_step_budget() {
        for p in SEED_PROGRAMS {
            let prog = p.assembled();
            let mut vm = Vm::with_mem(p.initial_dmem(1));
            let r = run_round(&mut vm, &prog, 1, None);
            assert_eq!(r.outcome, Outcome::Halted, "{}", p.name);
            assert!(
                r.steps < crate::STEP_BUDGET / 10,
                "{}: {} steps leaves no hang headroom",
                p.name,
                r.steps
            );
        }
    }

    #[test]
    fn state_window_evolves_every_round() {
        for p in SEED_PROGRAMS {
            let prog = p.assembled();
            let mut vm = Vm::with_mem(p.initial_dmem(3));
            let mut prev = vm.mem[STATE_WINDOW].to_vec();
            for round in 1..=4u32 {
                run_round(&mut vm, &prog, round, None);
                let cur = vm.mem[STATE_WINDOW].to_vec();
                assert_ne!(cur, prev, "{} round {round}: state stuck", p.name);
                prev = cur;
            }
        }
    }

    #[test]
    fn seeds_select_distinct_trajectories() {
        for p in SEED_PROGRAMS {
            assert_ne!(p.oracle(1, 4), p.oracle(2, 4), "{}", p.name);
        }
    }

    #[test]
    fn padding_is_never_touched() {
        for p in SEED_PROGRAMS {
            let init = p.initial_dmem(9);
            let after = p.oracle(9, 16);
            assert_eq!(
                &init[PAD_BASE..],
                &after[PAD_BASE..],
                "{}: padding must stay dead",
                p.name
            );
        }
    }

    #[test]
    fn strhash_string_is_initialized_and_mutated() {
        let p = seed_program("strhash").unwrap();
        let init = p.initial_dmem(0);
        assert_eq!(init[STR_BASE], u32::from_le_bytes(*b"virt"));
        let after = p.oracle(0, 8);
        assert_ne!(&init[STR_BASE..PAD_BASE], &after[STR_BASE..PAD_BASE]);
    }
}
