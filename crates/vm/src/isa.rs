//! Fixed-width instruction set: every instruction encodes to one 32-bit
//! word laid out as `op(8) | a(8) | b(8) | c(8)`.
//!
//! Register operands are window-relative (the interpreter adds the
//! current window base); 16-bit immediates (literal-pool indexes and
//! branch targets) occupy the `b`/`c` bytes big-endian. Invalid opcodes
//! decode to `None` and trap as illegal instructions, so a bit flip in
//! program text is always either a behavior change or a trap, never
//! undefined behavior.

/// Two-operand ALU operations (`d = a <op> b`). All wrap; shifts mask
/// the amount to 5 bits so results never depend on host semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    Xor,
    And,
    Or,
    Shl,
    Shr,
}

impl AluOp {
    /// Apply the operation with wrapping/masking semantics.
    #[must_use]
    pub fn eval(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Xor => a ^ b,
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Shl => a << (b & 31),
            AluOp::Shr => a >> (b & 31),
        }
    }

    /// `true` when `a <op> b == b <op> a` for all inputs — the set the
    /// diversity transformer is allowed to swap operands on.
    #[must_use]
    pub fn commutes(self) -> bool {
        matches!(
            self,
            AluOp::Add | AluOp::Mul | AluOp::Xor | AluOp::And | AluOp::Or
        )
    }

    fn opcode(self) -> u8 {
        match self {
            AluOp::Add => 3,
            AluOp::Sub => 4,
            AluOp::Mul => 5,
            AluOp::Xor => 6,
            AluOp::And => 7,
            AluOp::Or => 8,
            AluOp::Shl => 9,
            AluOp::Shr => 10,
        }
    }

    fn from_opcode(op: u8) -> Option<AluOp> {
        Some(match op {
            3 => AluOp::Add,
            4 => AluOp::Sub,
            5 => AluOp::Mul,
            6 => AluOp::Xor,
            7 => AluOp::And,
            8 => AluOp::Or,
            9 => AluOp::Shl,
            10 => AluOp::Shr,
            _ => return None,
        })
    }

    /// Assembler mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Xor => "xor",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
        }
    }
}

/// One decoded instruction. Register fields are window-relative names;
/// `idx`/`target` are absolute literal-pool and code indexes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Stop the round; architectural state at this point is what the
    /// duplex comparison digests.
    Halt,
    /// `r[d] = lits[idx]` — the only way constants enter the machine.
    LoadLit { d: u8, idx: u16 },
    /// `r[d] = r[s]`.
    Mov { d: u8, s: u8 },
    /// `r[d] = r[a] <op> r[b]`.
    Alu { op: AluOp, d: u8, a: u8, b: u8 },
    /// `r[d] = (r[a] < r[b]) as u32` (unsigned).
    CmpLt { d: u8, a: u8, b: u8 },
    /// `r[d] = (r[a] == r[b]) as u32`.
    CmpEq { d: u8, a: u8, b: u8 },
    /// Unconditional branch to code index `target`.
    Jmp { target: u16 },
    /// Branch when `r[s] != 0`.
    Jnz { s: u8, target: u16 },
    /// Branch when `r[s] == 0`.
    Jz { s: u8, target: u16 },
    /// Push the return frame and slide the register window up by
    /// [`crate::WINDOW_SHIFT`]: the caller's `r8..` become the callee's
    /// `r0..`.
    Call { target: u16 },
    /// Pop the newest frame and restore the caller's window.
    Ret,
    /// `r[d] = mem[r[a]]`.
    Ld { d: u8, a: u8 },
    /// `mem[r[a]] = r[s]`.
    St { a: u8, s: u8 },
}

impl Instr {
    /// Encode to the canonical 32-bit word.
    #[must_use]
    pub fn encode(self) -> u32 {
        let (op, a, b, c): (u8, u8, u8, u8) = match self {
            Instr::Halt => (0, 0, 0, 0),
            Instr::LoadLit { d, idx } => (1, d, (idx >> 8) as u8, idx as u8),
            Instr::Mov { d, s } => (2, d, s, 0),
            Instr::Alu { op, d, a, b } => (op.opcode(), d, a, b),
            Instr::CmpLt { d, a, b } => (11, d, a, b),
            Instr::CmpEq { d, a, b } => (12, d, a, b),
            Instr::Jmp { target } => (13, 0, (target >> 8) as u8, target as u8),
            Instr::Jnz { s, target } => (14, s, (target >> 8) as u8, target as u8),
            Instr::Jz { s, target } => (15, s, (target >> 8) as u8, target as u8),
            Instr::Call { target } => (16, 0, (target >> 8) as u8, target as u8),
            Instr::Ret => (17, 0, 0, 0),
            Instr::Ld { d, a } => (18, d, a, 0),
            Instr::St { a, s } => (19, a, s, 0),
        };
        (u32::from(op) << 24) | (u32::from(a) << 16) | (u32::from(b) << 8) | u32::from(c)
    }

    /// Decode a 32-bit word; `None` for unknown opcodes (illegal
    /// instruction trap at execution time).
    #[must_use]
    pub fn decode(word: u32) -> Option<Instr> {
        let op = (word >> 24) as u8;
        let a = (word >> 16) as u8;
        let b = (word >> 8) as u8;
        let c = word as u8;
        let imm = (u16::from(b) << 8) | u16::from(c);
        Some(match op {
            0 => Instr::Halt,
            1 => Instr::LoadLit { d: a, idx: imm },
            2 => Instr::Mov { d: a, s: b },
            3..=10 => Instr::Alu {
                op: AluOp::from_opcode(op)?,
                d: a,
                a: b,
                b: c,
            },
            11 => Instr::CmpLt { d: a, a: b, b: c },
            12 => Instr::CmpEq { d: a, a: b, b: c },
            13 => Instr::Jmp { target: imm },
            14 => Instr::Jnz { s: a, target: imm },
            15 => Instr::Jz { s: a, target: imm },
            16 => Instr::Call { target: imm },
            17 => Instr::Ret,
            18 => Instr::Ld { d: a, a: b },
            19 => Instr::St { a, s: b },
            _ => return None,
        })
    }

    /// Render in assembler syntax (used by `vds vm asm` listings).
    #[must_use]
    pub fn render(self) -> String {
        match self {
            Instr::Halt => "halt".to_string(),
            Instr::LoadLit { d, idx } => format!("lit   r{d}, [{idx}]"),
            Instr::Mov { d, s } => format!("mov   r{d}, r{s}"),
            Instr::Alu { op, d, a, b } => {
                format!("{:<5} r{d}, r{a}, r{b}", op.mnemonic())
            }
            Instr::CmpLt { d, a, b } => format!("cmplt r{d}, r{a}, r{b}"),
            Instr::CmpEq { d, a, b } => format!("cmpeq r{d}, r{a}, r{b}"),
            Instr::Jmp { target } => format!("jmp   @{target}"),
            Instr::Jnz { s, target } => format!("jnz   r{s}, @{target}"),
            Instr::Jz { s, target } => format!("jz    r{s}, @{target}"),
            Instr::Call { target } => format!("call  @{target}"),
            Instr::Ret => "ret".to_string(),
            Instr::Ld { d, a } => format!("ld    r{d}, r{a}"),
            Instr::St { a, s } => format!("st    r{a}, r{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_forms() -> Vec<Instr> {
        let mut v = vec![
            Instr::Halt,
            Instr::LoadLit { d: 7, idx: 0x1234 },
            Instr::Mov { d: 1, s: 250 },
            Instr::CmpLt { d: 3, a: 4, b: 5 },
            Instr::CmpEq { d: 3, a: 4, b: 5 },
            Instr::Jmp { target: 0xBEEF },
            Instr::Jnz { s: 9, target: 2 },
            Instr::Jz {
                s: 0,
                target: 65535,
            },
            Instr::Call { target: 400 },
            Instr::Ret,
            Instr::Ld { d: 2, a: 6 },
            Instr::St { a: 6, s: 2 },
        ];
        for op in [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Mul,
            AluOp::Xor,
            AluOp::And,
            AluOp::Or,
            AluOp::Shl,
            AluOp::Shr,
        ] {
            v.push(Instr::Alu {
                op,
                d: 1,
                a: 2,
                b: 3,
            });
        }
        v
    }

    #[test]
    fn encode_decode_roundtrip() {
        for i in all_forms() {
            assert_eq!(Instr::decode(i.encode()), Some(i), "{i:?}");
        }
    }

    #[test]
    fn unknown_opcodes_decode_to_none() {
        for op in 20u32..=255 {
            assert_eq!(Instr::decode(op << 24), None);
        }
    }

    #[test]
    fn alu_semantics_wrap_and_mask() {
        assert_eq!(AluOp::Add.eval(u32::MAX, 2), 1);
        assert_eq!(AluOp::Mul.eval(0x8000_0000, 2), 0);
        assert_eq!(AluOp::Sub.eval(0, 1), u32::MAX);
        assert_eq!(AluOp::Shl.eval(1, 33), 2); // amount masked to 5 bits
        assert_eq!(AluOp::Shr.eval(4, 33), 2);
    }

    #[test]
    fn commutativity_whitelist_is_sound() {
        for op in [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Mul,
            AluOp::Xor,
            AluOp::And,
            AluOp::Or,
            AluOp::Shl,
            AluOp::Shr,
        ] {
            let samples = [(3u32, 17u32), (0, u32::MAX), (12345, 67890)];
            let always = samples.iter().all(|&(a, b)| op.eval(a, b) == op.eval(b, a));
            if op.commutes() {
                assert!(always, "{op:?} claimed commutative");
            }
        }
        assert!(!AluOp::Sub.commutes() && !AluOp::Shl.commutes());
    }
}
