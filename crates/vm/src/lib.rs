//! A small register-based bytecode VM that turns real programs into VDS
//! workloads.
//!
//! The duplex engines in `vds-core` historically advanced synthetic work
//! units; every fault-coverage or G-residual number was therefore
//! parametric rather than earned on architectural state. This crate
//! supplies the missing substance: a fixed-width register ISA with
//! register windows (modeled on regorus's RVM), a deterministic
//! assembler for a tiny text format, an interpreter with explicit trap
//! and step-budget semantics, and four seed programs (checksum loop,
//! insertion sort, 3x3 matrix multiply, string hash) each paired with a
//! pure-Rust oracle over the full data memory.
//!
//! Determinism contract: assembling the same source yields the same
//! `Program` (literal pool interned in first-appearance order, labels
//! resolved in two passes), and executing the same program from the
//! same data memory always performs the same instruction sequence. All
//! arithmetic wraps; shifts mask their amount to 5 bits; there is no
//! I/O, no clock, and no host-dependent behavior. The duplex engine in
//! `vds-core` leans on this to digest registers+memory per round and
//! compare variants bit-for-bit.
//!
//! The crate is dependency-free so the diversity and fault layers can
//! reshape programs and flip architectural state without cycles in the
//! workspace graph.

pub mod asm;
pub mod interp;
pub mod isa;
pub mod programs;

pub use asm::{assemble, AsmError, Program};
pub use interp::{
    FaultPlan, Outcome, RunResult, StateFlip, Trap, Vm, DMEM_WORDS, MAX_FRAMES, REG_FILE,
    STEP_BUDGET, WINDOW_SHIFT,
};
pub use isa::{AluOp, Instr};
pub use programs::{
    seed_program, SeedProgram, ADDR_ROUND, ADDR_STATE, DIGEST_REGS, SEED_PROGRAMS, STATE_WINDOW,
};

/// Run one duplex round: canonical re-entry (registers zeroed, window
/// base and pc reset), publish the round number at [`ADDR_ROUND`], then
/// execute to halt/trap/hang. Data memory persists across rounds — that
/// persistence is what gives injected memory faults a lifetime.
pub fn run_round(vm: &mut Vm, prog: &Program, round: u32, fault: Option<&FaultPlan>) -> RunResult {
    vm.reset_for_round();
    vm.mem[ADDR_ROUND] = round;
    vm.run(prog, fault)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_protocol_is_reentrant() {
        let p = seed_program("checksum").unwrap();
        let mut vm = Vm::with_mem(p.initial_dmem(7));
        for round in 1..=5u32 {
            let r = run_round(&mut vm, &p.assembled(), round, None);
            assert!(matches!(r.outcome, Outcome::Halted), "round {round}: {r:?}");
            assert_eq!(vm.mem[ADDR_ROUND], round);
        }
    }
}
