//! The interpreter: a flat 256-register file viewed through a sliding
//! window, a word-addressed data memory, and explicit trap/budget
//! semantics so every abnormal outcome is observable evidence for the
//! duplex comparator.

use crate::asm::Program;
use crate::isa::Instr;

/// Size of the flat physical register file.
pub const REG_FILE: usize = 256;
/// How far the window slides on `call`: the caller's `r8..` alias the
/// callee's `r0..`, so `r8..r11` are the argument/return registers.
pub const WINDOW_SHIFT: usize = 8;
/// Maximum call depth before a frame-overflow trap.
pub const MAX_FRAMES: usize = 24;
/// Words of data memory. Layout conventions live in [`crate::programs`].
pub const DMEM_WORDS: usize = 64;
/// Per-round step budget; exceeding it is a hang verdict, the VM
/// analogue of the watchdog in the micro engine.
pub const STEP_BUDGET: u64 = 100_000;

/// Why execution stopped abnormally.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trap {
    /// `pc` left the code array (also the usual fate of a PC bit flip).
    PcOutOfRange,
    /// The fetched word decoded to no instruction.
    IllegalInstr,
    /// A literal-pool index exceeded the pool.
    LitOutOfRange,
    /// A load/store address exceeded data memory.
    MemOutOfRange,
    /// A window-relative register name fell off the physical file.
    RegOutOfRange,
    /// `call` beyond [`MAX_FRAMES`] or past the register file.
    FrameOverflow,
    /// `ret` with no frame to pop.
    FrameUnderflow,
}

impl Trap {
    /// Short stable name (journal/report strings).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Trap::PcOutOfRange => "pc-oob",
            Trap::IllegalInstr => "illegal",
            Trap::LitOutOfRange => "lit-oob",
            Trap::MemOutOfRange => "mem-oob",
            Trap::RegOutOfRange => "reg-oob",
            Trap::FrameOverflow => "frame-overflow",
            Trap::FrameUnderflow => "frame-underflow",
        }
    }
}

/// How one round of execution ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Reached `halt`; architectural state is valid for comparison.
    Halted,
    /// Trapped at the given pc.
    Trapped { trap: Trap, pc: u32 },
    /// Exceeded [`STEP_BUDGET`].
    Hung,
}

/// Result of [`Vm::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunResult {
    pub outcome: Outcome,
    /// Instructions executed (the engine's time unit for this round).
    pub steps: u64,
    /// Whether a scheduled [`FaultPlan`] actually fired; a plan whose
    /// `at_step` lies beyond the halt point arrives masked.
    pub fault_applied: bool,
}

/// A single architectural-state bit flip scheduled mid-execution.
/// Literal-pool flips are not represented here: the pool is immutable
/// program text, so the engine flips it on its copy of the [`Program`]
/// before the round and reverts it after.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Apply the flip just before executing this step (0 = before the
    /// first instruction, i.e. on round-entry state).
    pub at_step: u64,
    pub flip: StateFlip,
}

/// Target of a [`FaultPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StateFlip {
    /// Flip one bit of a physical register (absolute index).
    Reg { index: u16, bit: u8 },
    /// Flip one bit of the program counter.
    Pc { bit: u8 },
    /// Flip one bit of a data-memory word.
    Mem { addr: u8, bit: u8 },
}

/// Machine state. Registers and control state are reset at every round
/// entry; data memory persists for the life of the run.
#[derive(Clone, Debug)]
pub struct Vm {
    /// Flat physical register file; the window base selects the visible
    /// `r0..` slice.
    pub regs: [u32; REG_FILE],
    /// Program counter (code index).
    pub pc: u32,
    /// Current window base into `regs`.
    pub base: u32,
    /// Return frames: `(return_pc, caller_base)`.
    frames: Vec<(u32, u32)>,
    /// Word-addressed data memory.
    pub mem: Vec<u32>,
}

impl Default for Vm {
    fn default() -> Self {
        Vm::new()
    }
}

impl Vm {
    /// Fresh machine with zeroed memory.
    #[must_use]
    pub fn new() -> Vm {
        Vm::with_mem(vec![0; DMEM_WORDS])
    }

    /// Fresh machine with the given initial data memory.
    #[must_use]
    pub fn with_mem(mem: Vec<u32>) -> Vm {
        Vm {
            regs: [0; REG_FILE],
            pc: 0,
            base: 0,
            frames: Vec::new(),
            mem,
        }
    }

    /// Canonical round entry: zero all registers, reset pc/window/call
    /// stack. Data memory is deliberately left alone.
    pub fn reset_for_round(&mut self) {
        self.regs = [0; REG_FILE];
        self.pc = 0;
        self.base = 0;
        self.frames.clear();
    }

    /// The registers the duplex digest covers: the base frame's
    /// `r0..r3` output registers.
    #[must_use]
    pub fn output_regs(&self) -> [u32; 4] {
        [self.regs[0], self.regs[1], self.regs[2], self.regs[3]]
    }

    fn reg_index(&self, r: u8) -> Result<usize, Trap> {
        let i = self.base as usize + usize::from(r);
        if i >= REG_FILE {
            Err(Trap::RegOutOfRange)
        } else {
            Ok(i)
        }
    }

    fn get(&self, r: u8) -> Result<u32, Trap> {
        Ok(self.regs[self.reg_index(r)?])
    }

    fn set(&mut self, r: u8, v: u32) -> Result<(), Trap> {
        let i = self.reg_index(r)?;
        self.regs[i] = v;
        Ok(())
    }

    fn apply_flip(&mut self, flip: StateFlip) {
        match flip {
            StateFlip::Reg { index, bit } => {
                let i = usize::from(index) % REG_FILE;
                self.regs[i] ^= 1u32 << (bit & 31);
            }
            StateFlip::Pc { bit } => {
                // keep the flip inside the 16-bit encodable pc range;
                // it still almost always lands out of code bounds
                self.pc ^= 1u32 << (bit & 15);
            }
            StateFlip::Mem { addr, bit } => {
                let a = usize::from(addr) % self.mem.len().max(1);
                self.mem[a] ^= 1u32 << (bit & 31);
            }
        }
    }

    /// Execute until halt, trap, or budget exhaustion, optionally
    /// applying one scheduled state flip mid-flight.
    pub fn run(&mut self, prog: &Program, fault: Option<&FaultPlan>) -> RunResult {
        let mut steps: u64 = 0;
        let mut fault_applied = false;
        let done = |outcome, steps, fault_applied| RunResult {
            outcome,
            steps,
            fault_applied,
        };
        loop {
            if let Some(f) = fault {
                if !fault_applied && steps >= f.at_step {
                    self.apply_flip(f.flip);
                    fault_applied = true;
                }
            }
            if steps >= STEP_BUDGET {
                return done(Outcome::Hung, steps, fault_applied);
            }
            let pc = self.pc;
            let Some(&instr) = prog.code.get(pc as usize) else {
                return done(
                    Outcome::Trapped {
                        trap: Trap::PcOutOfRange,
                        pc,
                    },
                    steps,
                    fault_applied,
                );
            };
            steps += 1;
            match self.exec(prog, instr) {
                Ok(Flow::Next) => self.pc = pc + 1,
                Ok(Flow::Jump(t)) => self.pc = t,
                Ok(Flow::Halt) => return done(Outcome::Halted, steps, fault_applied),
                Err(trap) => {
                    return done(Outcome::Trapped { trap, pc }, steps, fault_applied);
                }
            }
        }
    }

    fn exec(&mut self, prog: &Program, instr: Instr) -> Result<Flow, Trap> {
        match instr {
            Instr::Halt => return Ok(Flow::Halt),
            Instr::LoadLit { d, idx } => {
                let v = *prog.lits.get(usize::from(idx)).ok_or(Trap::LitOutOfRange)?;
                self.set(d, v)?;
            }
            Instr::Mov { d, s } => {
                let v = self.get(s)?;
                self.set(d, v)?;
            }
            Instr::Alu { op, d, a, b } => {
                let v = op.eval(self.get(a)?, self.get(b)?);
                self.set(d, v)?;
            }
            Instr::CmpLt { d, a, b } => {
                let v = u32::from(self.get(a)? < self.get(b)?);
                self.set(d, v)?;
            }
            Instr::CmpEq { d, a, b } => {
                let v = u32::from(self.get(a)? == self.get(b)?);
                self.set(d, v)?;
            }
            Instr::Jmp { target } => return Ok(Flow::Jump(u32::from(target))),
            Instr::Jnz { s, target } => {
                if self.get(s)? != 0 {
                    return Ok(Flow::Jump(u32::from(target)));
                }
            }
            Instr::Jz { s, target } => {
                if self.get(s)? == 0 {
                    return Ok(Flow::Jump(u32::from(target)));
                }
            }
            Instr::Call { target } => {
                let new_base = self.base as usize + WINDOW_SHIFT;
                if self.frames.len() >= MAX_FRAMES || new_base + WINDOW_SHIFT > REG_FILE {
                    return Err(Trap::FrameOverflow);
                }
                self.frames.push((self.pc + 1, self.base));
                self.base = new_base as u32;
                return Ok(Flow::Jump(u32::from(target)));
            }
            Instr::Ret => {
                let (ret_pc, base) = self.frames.pop().ok_or(Trap::FrameUnderflow)?;
                self.base = base;
                return Ok(Flow::Jump(ret_pc));
            }
            Instr::Ld { d, a } => {
                let addr = self.get(a)? as usize;
                let v = *self.mem.get(addr).ok_or(Trap::MemOutOfRange)?;
                self.set(d, v)?;
            }
            Instr::St { a, s } => {
                let addr = self.get(a)? as usize;
                let v = self.get(s)?;
                if addr >= self.mem.len() {
                    return Err(Trap::MemOutOfRange);
                }
                self.mem[addr] = v;
            }
        }
        Ok(Flow::Next)
    }
}

enum Flow {
    Next,
    Jump(u32),
    Halt,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run_src(src: &str) -> (Vm, RunResult) {
        let p = assemble("t", src).unwrap();
        let mut vm = Vm::new();
        let r = vm.run(&p, None);
        (vm, r)
    }

    #[test]
    fn straight_line_arithmetic() {
        let (vm, r) = run_src(
            "lit r1, 40\n\
             lit r2, 2\n\
             add r0, r1, r2\n\
             halt\n",
        );
        assert_eq!(r.outcome, Outcome::Halted);
        assert_eq!(vm.regs[0], 42);
        assert_eq!(r.steps, 4);
    }

    #[test]
    fn loops_and_compares() {
        // sum 1..=10
        let (vm, r) = run_src(
            "lit r4, 0\n\
             lit r5, 0\n\
             loop:\n\
             lit r6, 1\n\
             add r4, r4, r6\n\
             add r5, r5, r4\n\
             lit r6, 10\n\
             cmplt r6, r4, r6\n\
             jnz r6, loop\n\
             mov r0, r5\n\
             halt\n",
        );
        assert_eq!(r.outcome, Outcome::Halted);
        assert_eq!(vm.regs[0], 55);
    }

    #[test]
    fn call_slides_the_register_window() {
        // caller passes 5 in r8 (callee r0); callee doubles it; caller
        // reads the result back from r8; callee scratch must not
        // disturb the caller's r4.
        let (vm, r) = run_src(
            "lit r4, 99\n\
             lit r8, 5\n\
             call double\n\
             mov r0, r8\n\
             mov r1, r4\n\
             halt\n\
             double:\n\
             lit r4, 2\n\
             mul r0, r0, r4\n\
             ret\n",
        );
        assert_eq!(r.outcome, Outcome::Halted);
        assert_eq!(vm.regs[0], 10);
        assert_eq!(vm.regs[1], 99, "caller scratch survived the call");
    }

    #[test]
    fn memory_roundtrip() {
        let (vm, r) = run_src(
            "lit r1, 7\n\
             lit r2, 1234\n\
             st r1, r2\n\
             ld r0, r1\n\
             halt\n",
        );
        assert_eq!(r.outcome, Outcome::Halted);
        assert_eq!(vm.regs[0], 1234);
        assert_eq!(vm.mem[7], 1234);
    }

    #[test]
    fn traps_are_precise() {
        let cases: &[(&str, Trap)] = &[
            ("lit r1, 9999\nld r0, r1\nhalt\n", Trap::MemOutOfRange),
            (
                "lit r1, 9999\nlit r2, 1\nst r1, r2\nhalt\n",
                Trap::MemOutOfRange,
            ),
            ("ret\n", Trap::FrameUnderflow),
            ("jmp nowhere\nnowhere:\n", Trap::PcOutOfRange),
        ];
        for (src, want) in cases {
            let (_, r) = run_src(src);
            match r.outcome {
                Outcome::Trapped { trap, .. } => assert_eq!(trap, *want, "{src}"),
                other => panic!("{src}: {other:?}"),
            }
        }
    }

    #[test]
    fn deep_recursion_traps_as_frame_overflow() {
        let (_, r) = run_src("down:\ncall down\nhalt\n");
        match r.outcome {
            Outcome::Trapped { trap, .. } => assert_eq!(trap, Trap::FrameOverflow),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn infinite_loop_hits_the_step_budget() {
        let (_, r) = run_src("spin:\njmp spin\n");
        assert_eq!(r.outcome, Outcome::Hung);
        assert_eq!(r.steps, STEP_BUDGET);
    }

    #[test]
    fn register_flip_fires_at_the_scheduled_step() {
        let p = assemble(
            "t",
            "lit r1, 1\n\
             lit r2, 2\n\
             add r0, r1, r2\n\
             halt\n",
        )
        .unwrap();
        // flip r1 bit 4 after the two loads: 1 -> 17, so r0 = 19
        let mut vm = Vm::new();
        let r = vm.run(
            &p,
            Some(&FaultPlan {
                at_step: 2,
                flip: StateFlip::Reg { index: 1, bit: 4 },
            }),
        );
        assert_eq!(r.outcome, Outcome::Halted);
        assert!(r.fault_applied);
        assert_eq!(vm.regs[0], 19);
    }

    #[test]
    fn late_fault_plans_arrive_masked() {
        let p = assemble("t", "halt\n").unwrap();
        let mut vm = Vm::new();
        let r = vm.run(
            &p,
            Some(&FaultPlan {
                at_step: 50,
                flip: StateFlip::Reg { index: 0, bit: 0 },
            }),
        );
        assert_eq!(r.outcome, Outcome::Halted);
        assert!(!r.fault_applied, "plan beyond halt never fires");
        assert_eq!(vm.regs[0], 0);
    }

    #[test]
    fn pc_flip_usually_traps() {
        let p = assemble("t", "lit r0, 1\nhalt\n").unwrap();
        let mut vm = Vm::new();
        let r = vm.run(
            &p,
            Some(&FaultPlan {
                at_step: 0,
                flip: StateFlip::Pc { bit: 9 },
            }),
        );
        assert!(r.fault_applied);
        assert!(matches!(
            r.outcome,
            Outcome::Trapped {
                trap: Trap::PcOutOfRange,
                ..
            }
        ));
    }

    #[test]
    fn identical_runs_are_bit_identical() {
        let p = crate::seed_program("checksum").unwrap();
        let prog = p.assembled();
        let mut a = Vm::with_mem(p.initial_dmem(3));
        let mut b = Vm::with_mem(p.initial_dmem(3));
        for round in 1..=6 {
            let ra = crate::run_round(&mut a, &prog, round, None);
            let rb = crate::run_round(&mut b, &prog, round, None);
            assert_eq!(ra, rb);
        }
        assert_eq!(a.regs, b.regs);
        assert_eq!(a.mem, b.mem);
    }
}
