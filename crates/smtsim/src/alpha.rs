//! Measuring the SMT contention factor α.
//!
//! The paper takes α from Intel's published Pentium 4 numbers (α ≈ 0.65);
//! here we *measure* it on the simulated machine: run workload A alone,
//! workload B alone, then co-schedule both, and compare wall-clock cycles.
//!
//! Definition (matching Eq. 3): if a round of work takes `t` alone and a
//! co-scheduled pair of rounds takes `2αt`, then for two whole programs
//!
//! `α = T_pair / (T_A_alone + T_B_alone)`
//!
//! α = ½ means the pair finished in the time one program needs alone
//! (perfect overlap); α = 1 means co-scheduling bought nothing.

use crate::core::{Core, CoreConfig, RunOutcome};
use crate::kernels::Kernel;
use crate::program::Program;

/// Result of one α measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaMeasurement {
    /// Cycles for the first program alone.
    pub t_a: u64,
    /// Cycles for the second program alone.
    pub t_b: u64,
    /// Cycles for the co-scheduled pair (both complete).
    pub t_pair: u64,
    /// The contention factor.
    pub alpha: f64,
}

/// Run a single program (resuming through yields) and return total cycles.
///
/// # Panics
/// Panics if the program traps or exceeds `max_cycles`.
pub fn run_to_completion(cfg: &CoreConfig, prog: &Program, dmem_words: usize) -> u64 {
    let mut core = Core::new(cfg.clone());
    let t = core.add_thread(prog, dmem_words);
    loop {
        match core.run_until_all_blocked(u64::MAX / 4) {
            RunOutcome::AllHalted => return core.cycles(),
            RunOutcome::AllYielded => core.resume(t),
            other => panic!("program did not complete: {other:?}"),
        }
    }
}

/// Co-schedule two programs on a 2-context core until **both** halt,
/// resuming either whenever it yields; returns total cycles.
pub fn run_pair(cfg: &CoreConfig, a: (&Program, usize), b: (&Program, usize)) -> u64 {
    let mut cfg = cfg.clone();
    cfg.max_threads = cfg.max_threads.max(2);
    let mut core = Core::new(cfg);
    let ta = core.add_thread(a.0, a.1);
    let tb = core.add_thread(b.0, b.1);
    loop {
        match core.run_until_all_blocked(u64::MAX / 4) {
            RunOutcome::AllHalted => return core.cycles(),
            RunOutcome::AllYielded => {
                for t in [ta, tb] {
                    if core.thread(t).state == crate::core::ThreadState::Yielded {
                        core.resume(t);
                    }
                }
            }
            other => panic!("pair did not complete: {other:?}"),
        }
    }
}

/// Measure α for a pair of kernels on the given core configuration.
pub fn measure(cfg: &CoreConfig, a: &Kernel, b: &Kernel) -> AlphaMeasurement {
    let pa = a.program();
    let pb = b.program();
    let t_a = run_to_completion(cfg, &pa, a.dmem_words);
    let t_b = run_to_completion(cfg, &pb, b.dmem_words);
    let t_pair = run_pair(cfg, (&pa, a.dmem_words), (&pb, b.dmem_words));
    AlphaMeasurement {
        t_a,
        t_b,
        t_pair,
        alpha: t_pair as f64 / (t_a + t_b) as f64,
    }
}

/// Measure α for every ordered pair in a kernel set; returns
/// `(name_a, name_b, measurement)` rows.
pub fn measure_matrix(
    cfg: &CoreConfig,
    kernels: &[Kernel],
) -> Vec<(String, String, AlphaMeasurement)> {
    let mut rows = Vec::new();
    for a in kernels {
        for b in kernels {
            rows.push((a.name.clone(), b.name.clone(), measure(cfg, a, b)));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    fn cfg() -> CoreConfig {
        CoreConfig::default()
    }

    #[test]
    fn alpha_is_in_model_range_for_homogeneous_pairs() {
        for k in kernels::suite(2) {
            let m = measure(&cfg(), &k, &k);
            assert!(
                m.alpha >= 0.5 - 1e-9 && m.alpha <= 1.05,
                "kernel {}: alpha={}",
                k.name,
                m.alpha
            );
        }
    }

    #[test]
    fn alpha_reflects_resource_pressure() {
        // Cache-thrashing pointer chases collide on the shared D-cache,
        // so their self-pair overlaps far worse than a latency-bound
        // compute pair whose stall slots the sibling can fill.
        let p = kernels::pchase(512, 256, 2);
        let c = kernels::control(128, 2);
        let chase_self = measure(&cfg(), &p, &p).alpha;
        let ctl_self = measure(&cfg(), &c, &c).alpha;
        assert!(
            chase_self > ctl_self + 0.1,
            "pchase self {chase_self} vs control self {ctl_self}"
        );
        // Two low-conflict kernels co-run near the perfect-overlap limit.
        assert!(ctl_self < 0.6, "control self {ctl_self}");
    }

    #[test]
    fn matmul_self_pair_lands_in_papers_alpha_regime() {
        // The paper's headline α is 0.65 (Pentium 4). Our matmul — the
        // most "application-like" kernel (mul + loads + branches) — pairs
        // with itself in that regime on the default core.
        let k = kernels::matmul(8, 2);
        let m = measure(&cfg(), &k, &k);
        assert!(
            (0.55..=0.8).contains(&m.alpha),
            "matmul self alpha={}",
            m.alpha
        );
    }

    #[test]
    fn pair_time_bounded_by_serial_and_longest() {
        let a = kernels::vecsum(128, 2);
        let b = kernels::control(64, 2);
        let m = measure(&cfg(), &a, &b);
        assert!(m.t_pair <= m.t_a + m.t_b, "{m:?}");
        assert!(m.t_pair >= m.t_a.max(m.t_b), "{m:?}");
    }

    #[test]
    fn measurement_is_deterministic() {
        let a = kernels::bsort(16, 1);
        let b = kernels::crc(64, 1);
        assert_eq!(measure(&cfg(), &a, &b), measure(&cfg(), &a, &b));
    }
}
