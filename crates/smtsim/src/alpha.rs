//! Measuring the SMT contention factor α.
//!
//! The paper takes α from Intel's published Pentium 4 numbers (α ≈ 0.65);
//! here we *measure* it on the simulated machine: run workload A alone,
//! workload B alone, then co-schedule both, and compare wall-clock cycles.
//!
//! Definition (matching Eq. 3): if a round of work takes `t` alone and a
//! co-scheduled pair of rounds takes `2αt`, then for two whole programs
//!
//! `α = T_pair / (T_A_alone + T_B_alone)`
//!
//! α = ½ means the pair finished in the time one program needs alone
//! (perfect overlap); α = 1 means co-scheduling bought nothing.
//!
//! Beyond the scalar ratio, [`measure_ledger`] *explains* α: it snapshots
//! each run's per-thread cycle accounting and hands the solo/co-run
//! counter deltas to [`vds_obs::alpha::PairLedger`], which attributes the
//! pair's excess cycles to icache/dcache/FU/width/branch interference
//! under the conservation invariant.

use crate::core::{Core, CoreConfig, RunOutcome, ThreadId, Trap};
use crate::kernels::Kernel;
use crate::program::Program;
use vds_obs::alpha::{AlphaReport, CycleSnapshot, PairLedger};

/// Result of one α measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaMeasurement {
    /// Cycles for the first program alone.
    pub t_a: u64,
    /// Cycles for the second program alone.
    pub t_b: u64,
    /// Cycles for the co-scheduled pair (both complete).
    pub t_pair: u64,
    /// The contention factor.
    pub alpha: f64,
}

/// Why a measurement run could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunError {
    /// A thread trapped (access violation, illegal instruction, PC out
    /// of range).
    Trapped(ThreadId, Trap),
    /// The cycle budget ran out before every thread halted.
    CycleBudgetExhausted,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Trapped(tid, trap) => {
                write!(f, "thread {} trapped: {trap:?}", tid.0)
            }
            RunError::CycleBudgetExhausted => write!(f, "cycle budget exhausted"),
        }
    }
}

impl std::error::Error for RunError {}

fn outcome_error(outcome: RunOutcome) -> RunError {
    match outcome {
        RunOutcome::Trapped(tid, trap) => RunError::Trapped(tid, trap),
        _ => RunError::CycleBudgetExhausted,
    }
}

/// Run a single program (resuming through yields) and return total
/// cycles, or the trap / budget-exhaustion error.
pub fn run_to_completion(
    cfg: &CoreConfig,
    prog: &Program,
    dmem_words: usize,
) -> Result<u64, RunError> {
    run_solo_core(cfg, prog, dmem_words).map(|(cycles, _)| cycles)
}

fn run_solo_core(
    cfg: &CoreConfig,
    prog: &Program,
    dmem_words: usize,
) -> Result<(u64, CycleSnapshot), RunError> {
    let mut core = Core::new(cfg.clone());
    let t = core.add_thread(prog, dmem_words);
    loop {
        match core.run_until_all_blocked(u64::MAX / 4) {
            RunOutcome::AllHalted => {
                return Ok((core.cycles(), core.thread(t).counters.snapshot()))
            }
            RunOutcome::AllYielded => core.resume(t),
            other => return Err(outcome_error(other)),
        }
    }
}

/// Co-schedule two programs on a 2-context core until **both** halt,
/// resuming either whenever it yields; returns total cycles or the trap
/// / budget-exhaustion error.
pub fn run_pair(
    cfg: &CoreConfig,
    a: (&Program, usize),
    b: (&Program, usize),
) -> Result<u64, RunError> {
    run_pair_core(cfg, a, b).map(|(cycles, _, _)| cycles)
}

fn run_pair_core(
    cfg: &CoreConfig,
    a: (&Program, usize),
    b: (&Program, usize),
) -> Result<(u64, CycleSnapshot, CycleSnapshot), RunError> {
    let mut cfg = cfg.clone();
    cfg.max_threads = cfg.max_threads.max(2);
    let mut core = Core::new(cfg);
    let ta = core.add_thread(a.0, a.1);
    let tb = core.add_thread(b.0, b.1);
    loop {
        match core.run_until_all_blocked(u64::MAX / 4) {
            RunOutcome::AllHalted => {
                return Ok((
                    core.cycles(),
                    core.thread(ta).counters.snapshot(),
                    core.thread(tb).counters.snapshot(),
                ))
            }
            RunOutcome::AllYielded => {
                for t in [ta, tb] {
                    if core.thread(t).state == crate::core::ThreadState::Yielded {
                        core.resume(t);
                    }
                }
            }
            other => return Err(outcome_error(other)),
        }
    }
}

/// Measure α for a pair of kernels on the given core configuration.
pub fn measure(cfg: &CoreConfig, a: &Kernel, b: &Kernel) -> Result<AlphaMeasurement, RunError> {
    let pa = a.program();
    let pb = b.program();
    let t_a = run_to_completion(cfg, &pa, a.dmem_words)?;
    let t_b = run_to_completion(cfg, &pb, b.dmem_words)?;
    let t_pair = run_pair(cfg, (&pa, a.dmem_words), (&pb, b.dmem_words))?;
    Ok(AlphaMeasurement {
        t_a,
        t_b,
        t_pair,
        alpha: t_pair as f64 / (t_a + t_b) as f64,
    })
}

/// Measure the full attribution ledger for a pair of programs: solo
/// snapshots of each, a co-run snapshot of both, and the differential
/// cycle accounting between them.
pub fn measure_ledger_programs(
    cfg: &CoreConfig,
    name_a: &str,
    a: (&Program, usize),
    name_b: &str,
    b: (&Program, usize),
) -> Result<PairLedger, RunError> {
    let (_, solo_a) = run_solo_core(cfg, a.0, a.1)?;
    let (_, solo_b) = run_solo_core(cfg, b.0, b.1)?;
    let (_, co_a, co_b) = run_pair_core(cfg, a, b)?;
    Ok(PairLedger::attribute(
        name_a, name_b, solo_a, solo_b, co_a, co_b,
    ))
}

/// Measure the attribution ledger for a pair of kernels.
pub fn measure_ledger(cfg: &CoreConfig, a: &Kernel, b: &Kernel) -> Result<PairLedger, RunError> {
    let pa = a.program();
    let pb = b.program();
    measure_ledger_programs(
        cfg,
        &a.name,
        (&pa, a.dmem_words),
        &b.name,
        (&pb, b.dmem_words),
    )
}

/// Measure α for every ordered pair in a kernel set; returns
/// `(name_a, name_b, measurement)` rows.
pub fn measure_matrix(
    cfg: &CoreConfig,
    kernels: &[Kernel],
) -> Result<Vec<(String, String, AlphaMeasurement)>, RunError> {
    let mut rows = Vec::new();
    for a in kernels {
        for b in kernels {
            rows.push((a.name.clone(), b.name.clone(), measure(cfg, a, b)?));
        }
    }
    Ok(rows)
}

/// Measure the attribution ledger for every unordered pair (`i ≤ j`) in
/// a kernel set, collected into an [`AlphaReport`].
pub fn ledger_matrix(cfg: &CoreConfig, kernels: &[Kernel]) -> Result<AlphaReport, RunError> {
    let mut pairs = Vec::new();
    for (i, a) in kernels.iter().enumerate() {
        for b in kernels.iter().skip(i) {
            pairs.push(measure_ledger(cfg, a, b)?);
        }
    }
    Ok(AlphaReport { pairs })
}

/// The machine's mean *measured* α: the average contention factor over
/// every unordered kernel-suite pair on the given core. This is the
/// scalar `vds conformance --alpha measured` prices the closed forms
/// with, clamped into the model's valid `[0.5, 1]` range.
pub fn measured_alpha(cfg: &CoreConfig, rounds: u32) -> Result<(f64, AlphaReport), RunError> {
    let report = ledger_matrix(cfg, &crate::kernels::suite(rounds))?;
    let mean = report.mean_alpha().unwrap_or(0.65);
    Ok((mean.clamp(0.5, 1.0), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    fn cfg() -> CoreConfig {
        CoreConfig::default()
    }

    #[test]
    fn alpha_is_in_model_range_for_homogeneous_pairs() {
        for k in kernels::suite(2) {
            let m = measure(&cfg(), &k, &k).unwrap();
            assert!(
                m.alpha >= 0.5 - 1e-9 && m.alpha <= 1.05,
                "kernel {}: alpha={}",
                k.name,
                m.alpha
            );
        }
    }

    #[test]
    fn alpha_reflects_resource_pressure() {
        // Cache-thrashing pointer chases collide on the shared D-cache,
        // so their self-pair overlaps far worse than a latency-bound
        // compute pair whose stall slots the sibling can fill.
        let p = kernels::pchase(512, 256, 2);
        let c = kernels::control(128, 2);
        let chase_self = measure(&cfg(), &p, &p).unwrap().alpha;
        let ctl_self = measure(&cfg(), &c, &c).unwrap().alpha;
        assert!(
            chase_self > ctl_self + 0.1,
            "pchase self {chase_self} vs control self {ctl_self}"
        );
        // Two low-conflict kernels co-run near the perfect-overlap limit.
        assert!(ctl_self < 0.6, "control self {ctl_self}");
    }

    #[test]
    fn matmul_self_pair_lands_in_papers_alpha_regime() {
        // The paper's headline α is 0.65 (Pentium 4). Our matmul — the
        // most "application-like" kernel (mul + loads + branches) — pairs
        // with itself in that regime on the default core.
        let k = kernels::matmul(8, 2);
        let m = measure(&cfg(), &k, &k).unwrap();
        assert!(
            (0.55..=0.8).contains(&m.alpha),
            "matmul self alpha={}",
            m.alpha
        );
    }

    #[test]
    fn pair_time_bounded_by_serial_and_longest() {
        let a = kernels::vecsum(128, 2);
        let b = kernels::control(64, 2);
        let m = measure(&cfg(), &a, &b).unwrap();
        assert!(m.t_pair <= m.t_a + m.t_b, "{m:?}");
        assert!(m.t_pair >= m.t_a.max(m.t_b), "{m:?}");
    }

    #[test]
    fn measurement_is_deterministic() {
        let a = kernels::bsort(16, 1);
        let b = kernels::crc(64, 1);
        assert_eq!(
            measure(&cfg(), &a, &b).unwrap(),
            measure(&cfg(), &a, &b).unwrap()
        );
    }

    #[test]
    fn trapping_program_is_an_error_not_a_panic() {
        // An empty text section traps with PcOutOfRange on cycle one.
        let prog = Program {
            text: vec![],
            data: vec![],
            symbols: Default::default(),
            entry: 0,
        };
        let err = run_to_completion(&cfg(), &prog, 16).unwrap_err();
        assert!(matches!(
            err,
            RunError::Trapped(_, Trap::PcOutOfRange { .. })
        ));
        assert!(err.to_string().contains("trapped"));
        let ok = kernels::control(8, 1);
        let pk = ok.program();
        let err = run_pair(&cfg(), (&prog, 16), (&pk, ok.dmem_words)).unwrap_err();
        assert!(matches!(err, RunError::Trapped(_, _)));
    }

    #[test]
    fn ledger_agrees_with_scalar_measurement_and_is_exact() {
        let a = kernels::vecsum(128, 1);
        let b = kernels::crc(64, 1);
        let m = measure(&cfg(), &a, &b).unwrap();
        let l = measure_ledger(&cfg(), &a, &b).unwrap();
        assert_eq!((l.t_a, l.t_b, l.t_pair), (m.t_a, m.t_b, m.t_pair));
        assert!((l.alpha - m.alpha).abs() < 1e-12);
        assert!(l.is_exact());
        assert_eq!(l.excess, l.t_pair as i64 - l.t_a.max(l.t_b) as i64);
    }

    #[test]
    fn ledger_matrix_covers_unordered_pairs_deterministically() {
        let ks = [kernels::vecsum(64, 1), kernels::control(32, 1)];
        let r1 = ledger_matrix(&cfg(), &ks).unwrap();
        let r2 = ledger_matrix(&cfg(), &ks).unwrap();
        assert_eq!(r1.pairs.len(), 3); // aa, ab, bb
        assert_eq!(r1, r2);
        assert!(r1.pairs.iter().all(|p| p.is_exact()));
    }

    #[test]
    fn measured_alpha_is_in_model_range() {
        let (alpha, report) = measured_alpha(&cfg(), 1).unwrap();
        assert!((0.5..=1.0).contains(&alpha), "measured alpha {alpha}");
        assert!(!report.pairs.is_empty());
    }
}
