//! Per-thread performance counters.

/// Why a thread could not issue in a given cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// Waiting on an instruction-cache miss.
    ICache,
    /// Waiting on a data-cache miss.
    DCache,
    /// Required functional unit busy (taken by another thread or a
    /// multi-cycle op).
    FuBusy,
    /// Issue width exhausted by higher-priority threads.
    Width,
    /// Recovering from a branch mispredict.
    BranchFlush,
    /// Thread is parked (yielded/halted) — not really a stall, counted
    /// separately for utilisation accounting.
    Parked,
}

/// Counters for one hardware thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadCounters {
    /// Instructions retired.
    pub retired: u64,
    /// Cycles during which the thread existed (parked or not).
    pub cycles: u64,
    /// Cycles the thread issued an instruction.
    pub issued_cycles: u64,
    /// Stall cycles: instruction cache.
    pub stall_icache: u64,
    /// Stall cycles: data cache.
    pub stall_dcache: u64,
    /// Stall cycles: functional-unit contention.
    pub stall_fu: u64,
    /// Stall cycles: issue-width contention.
    pub stall_width: u64,
    /// Stall cycles: branch mispredict flush.
    pub stall_branch: u64,
    /// Cycles parked on `yield`/`halt`.
    pub parked: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Conditional branches mispredicted.
    pub mispredicts: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
}

impl ThreadCounters {
    /// Record a stall of the given cause.
    pub fn stall(&mut self, cause: StallCause) {
        match cause {
            StallCause::ICache => self.stall_icache += 1,
            StallCause::DCache => self.stall_dcache += 1,
            StallCause::FuBusy => self.stall_fu += 1,
            StallCause::Width => self.stall_width += 1,
            StallCause::BranchFlush => self.stall_branch += 1,
            StallCause::Parked => self.parked += 1,
        }
    }

    /// Instructions per (active, non-parked) cycle.
    pub fn ipc(&self) -> f64 {
        let active = self.cycles.saturating_sub(self.parked);
        if active == 0 {
            0.0
        } else {
            self.retired as f64 / active as f64
        }
    }

    /// Fraction of the thread's lifetime cycles it issued an instruction
    /// (0.0 before the first cycle). Unlike [`ThreadCounters::ipc`] this
    /// includes parked cycles, so it is the hardware-thread utilisation a
    /// live dashboard wants: how much of the core's time this thread
    /// actually used.
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.issued_cycles as f64 / self.cycles as f64
        }
    }

    /// Branch prediction accuracy (1.0 when no branches ran).
    pub fn branch_accuracy(&self) -> f64 {
        if self.branches == 0 {
            1.0
        } else {
            1.0 - self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Total stall cycles across causes (excluding parked).
    pub fn total_stalls(&self) -> u64 {
        self.stall_icache + self.stall_dcache + self.stall_fu + self.stall_width + self.stall_branch
    }

    /// Copy the cycle-accounting fields into an obs-side
    /// [`vds_obs::alpha::CycleSnapshot`] for differential α attribution.
    ///
    /// The snapshot obeys the conservation invariant
    /// `issued_cycles + stall_* + parked == cycles` (proptested in
    /// `tests/conservation.rs`), which is what makes ledger attribution
    /// exact.
    pub fn snapshot(&self) -> vds_obs::alpha::CycleSnapshot {
        vds_obs::alpha::CycleSnapshot {
            cycles: self.cycles,
            issued_cycles: self.issued_cycles,
            stall_icache: self.stall_icache,
            stall_dcache: self.stall_dcache,
            stall_fu: self.stall_fu,
            stall_width: self.stall_width,
            stall_branch: self.stall_branch,
            parked: self.parked,
        }
    }

    /// Flush every counter into a metrics registry under
    /// `<prefix>.<counter>` (e.g. `smt.thread0.retired`), plus derived
    /// `ipc` and `branch_accuracy` gauges. End-of-run export: generic
    /// over the facade, never feature-gated.
    pub fn export_metrics<R: vds_obs::Record>(&self, rec: &mut R, prefix: &str) {
        for (field, v) in [
            ("retired", self.retired),
            ("cycles", self.cycles),
            ("issued_cycles", self.issued_cycles),
            ("stall.icache", self.stall_icache),
            ("stall.dcache", self.stall_dcache),
            ("stall.fu", self.stall_fu),
            ("stall.width", self.stall_width),
            ("stall.branch", self.stall_branch),
            ("parked", self.parked),
            ("branches", self.branches),
            ("mispredicts", self.mispredicts),
            ("loads", self.loads),
            ("stores", self.stores),
        ] {
            rec.count(&format!("{prefix}.{field}"), v);
        }
        rec.gauge(&format!("{prefix}.ipc"), self.ipc());
        rec.gauge(&format!("{prefix}.utilization"), self.utilization());
        rec.gauge(&format!("{prefix}.branch_accuracy"), self.branch_accuracy());
    }
}

impl std::fmt::Display for ThreadCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "retired={} cycles={} ipc={:.3} stalls[i$={} d$={} fu={} width={} br={}] parked={} bacc={:.3}",
            self.retired,
            self.cycles,
            self.ipc(),
            self.stall_icache,
            self.stall_dcache,
            self.stall_fu,
            self.stall_width,
            self.stall_branch,
            self.parked,
            self.branch_accuracy(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_ignores_parked_cycles() {
        let mut c = ThreadCounters {
            retired: 50,
            cycles: 200,
            ..Default::default()
        };
        c.parked = 100;
        assert!((c.ipc() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ipc_of_empty_thread_is_zero() {
        assert_eq!(ThreadCounters::default().ipc(), 0.0);
    }

    #[test]
    fn stall_routing() {
        let mut c = ThreadCounters::default();
        c.stall(StallCause::ICache);
        c.stall(StallCause::DCache);
        c.stall(StallCause::DCache);
        c.stall(StallCause::FuBusy);
        c.stall(StallCause::Width);
        c.stall(StallCause::BranchFlush);
        c.stall(StallCause::Parked);
        assert_eq!(c.stall_icache, 1);
        assert_eq!(c.stall_dcache, 2);
        assert_eq!(c.total_stalls(), 6);
        assert_eq!(c.parked, 1);
    }

    #[test]
    fn utilization_counts_parked_time_against_the_thread() {
        let c = ThreadCounters {
            cycles: 200,
            issued_cycles: 50,
            parked: 100,
            ..Default::default()
        };
        assert!((c.utilization() - 0.25).abs() < 1e-12);
        assert_eq!(ThreadCounters::default().utilization(), 0.0);
        let mut rec = vds_obs::Recorder::new();
        c.export_metrics(&mut rec, "smt.thread0");
        assert_eq!(
            rec.registry().gauge_value("smt.thread0.utilization"),
            Some(0.25)
        );
    }

    #[test]
    fn branch_accuracy() {
        let c = ThreadCounters {
            branches: 10,
            mispredicts: 2,
            ..Default::default()
        };
        assert!((c.branch_accuracy() - 0.8).abs() < 1e-12);
        assert_eq!(ThreadCounters::default().branch_accuracy(), 1.0);
    }
}
