//! Two-pass assembler.
//!
//! Accepts a small, line-oriented assembly dialect:
//!
//! ```text
//! ; comments start with ';' or '#'
//! .text                       ; default section
//! start:                      ; labels end with ':'
//!     addi r1, r0, 10
//!     li   r2, 0xDEADBEEF     ; pseudo: expands to lui+ori (or addi)
//!     mv   r3, r1             ; pseudo: addi r3, r1, 0
//!     ld   r4, 2(r5)          ; word offset addressing
//!     st   r4, buf(r0)        ; data labels usable as immediates
//!     beq  r1, r0, done
//!     j    start              ; pseudo: jal r0, start
//!     subi r1, r1, 1          ; pseudo: addi with negated immediate
//! done:
//!     yield
//!     halt
//! .data
//! buf:    .word 1, 2, 3       ; initialised words
//! tmp:    .space 8            ; 8 zero words
//! ```
//!
//! Registers are `r0`–`r15` with the alias `zero` for `r0`. Immediates may
//! be decimal, `0x` hex, negative, a character literal `'a'`, or a label
//! (text labels give instruction indices, data labels word addresses).
//!
//! Pass 1 sizes every line (pseudo-instructions may occupy two slots) and
//! collects labels; pass 2 emits encoded words. Errors carry 1-based line
//! numbers.

use crate::isa::{
    AluImmOp, AluOp, BranchCond, Instr, MulOp, Reg, BRANCH_TARGET_MAX, IMM_MAX, IMM_MIN,
    TARGET_MAX, UIMM_MAX,
};
use crate::program::{Program, Symbol};
use std::collections::BTreeMap;

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        msg: msg.into(),
    })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// Assemble a source string into a [`Program`].
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    let lines: Vec<Line> = src
        .lines()
        .enumerate()
        .map(|(i, raw)| parse_line(i + 1, raw))
        .collect::<Result<_, _>>()?;

    // Pass 1: lay out sections, collect symbols.
    let mut symbols: BTreeMap<String, Symbol> = BTreeMap::new();
    let mut text_len: u32 = 0;
    let mut data_len: u32 = 0;
    let mut section = Section::Text;
    for line in &lines {
        if let Some(dir) = &line.directive {
            match dir {
                Directive::Text => section = Section::Text,
                Directive::Data => section = Section::Data,
                Directive::Word(ws) => data_len += ws.len() as u32,
                Directive::Space(n) => data_len += n,
            }
        }
        for label in &line.labels {
            let sym = match section {
                Section::Text => Symbol::Text(text_len),
                Section::Data => Symbol::Data(data_len_before(line, data_len)),
            };
            if symbols.insert(label.clone(), sym).is_some() {
                return err(line.no, format!("duplicate label `{label}`"));
            }
        }
        if let Some(stmt) = &line.stmt {
            if section != Section::Text {
                return err(line.no, "instruction outside .text");
            }
            text_len += stmt.size();
        }
    }

    // Pass 2: emit.
    let mut prog = Program {
        symbols,
        ..Program::default()
    };
    // Section bookkeeping is not needed in pass 2: pass 1 already
    // rejected instructions outside .text, and data directives carry
    // their own payloads.
    for line in &lines {
        if let Some(dir) = &line.directive {
            match dir {
                Directive::Text | Directive::Data => {}
                Directive::Word(ws) => {
                    for w in ws {
                        let v = resolve_value(w, &prog.symbols, line.no)?;
                        prog.data.push(v as u32);
                    }
                }
                Directive::Space(n) => prog.data.extend(std::iter::repeat_n(0, *n as usize)),
            }
        }
        if let Some(stmt) = &line.stmt {
            let at = prog.text.len() as u32;
            for i in stmt.lower(at, &prog.symbols, line.no)? {
                prog.text.push(crate::encode::encode(&i));
            }
        }
    }
    Ok(prog)
}

// Labels attached to a .word/.space line refer to the directive's own
// start; labels on earlier lines already saw the pre-directive length.
fn data_len_before(line: &Line, len_after: u32) -> u32 {
    match &line.directive {
        Some(Directive::Word(ws)) => len_after - ws.len() as u32,
        Some(Directive::Space(n)) => len_after - n,
        _ => len_after,
    }
}

#[derive(Debug, Clone)]
enum Directive {
    Text,
    Data,
    Word(Vec<String>),
    Space(u32),
}

#[derive(Debug, Clone)]
struct Line {
    no: usize,
    labels: Vec<String>,
    directive: Option<Directive>,
    stmt: Option<Stmt>,
}

/// A parsed (but not yet resolved) statement.
#[derive(Debug, Clone)]
struct Stmt {
    mnemonic: String,
    operands: Vec<String>,
}

impl Stmt {
    /// Number of machine instructions this statement expands to.
    fn size(&self) -> u32 {
        if self.mnemonic == "li" {
            // Worst case 2 (lui+ori); sized exactly in `li_size` when the
            // operand is a literal, but labels resolve in pass 2 — so we
            // must *commit* to a size in pass 1. We use the literal value
            // when parseable, else assume 2.
            match parse_int(&self.operands.get(1).cloned().unwrap_or_default()) {
                Some(v) if fits_simm16(v) => 1,
                _ => 2,
            }
        } else {
            1
        }
    }

    fn lower(
        &self,
        at: u32,
        symbols: &BTreeMap<String, Symbol>,
        line: usize,
    ) -> Result<Vec<Instr>, AsmError> {
        lower_stmt(self, at, symbols, line)
    }
}

fn strip_comment(s: &str) -> &str {
    match s.find([';', '#']) {
        Some(i) => &s[..i],
        None => s,
    }
}

fn parse_line(no: usize, raw: &str) -> Result<Line, AsmError> {
    let mut rest = strip_comment(raw).trim();
    let mut labels = Vec::new();
    // consume leading `label:` prefixes
    while let Some(colon) = rest.find(':') {
        let (head, tail) = rest.split_at(colon);
        let head = head.trim();
        if head.is_empty() || !is_ident(head) {
            break;
        }
        labels.push(head.to_string());
        rest = tail[1..].trim();
    }
    if rest.is_empty() {
        return Ok(Line {
            no,
            labels,
            directive: None,
            stmt: None,
        });
    }
    if let Some(stripped) = rest.strip_prefix('.') {
        let mut parts = stripped.splitn(2, char::is_whitespace);
        let name = parts.next().unwrap_or("");
        let args = parts.next().unwrap_or("").trim();
        let directive = match name {
            "text" => Directive::Text,
            "data" => Directive::Data,
            "word" => Directive::Word(
                args.split(',')
                    .map(|a| a.trim().to_string())
                    .filter(|a| !a.is_empty())
                    .collect(),
            ),
            "space" => {
                let n = parse_int(args)
                    .filter(|&v| v >= 0)
                    .ok_or_else(|| AsmError {
                        line: no,
                        msg: format!("bad .space count `{args}`"),
                    })?;
                Directive::Space(n as u32)
            }
            other => return err(no, format!("unknown directive `.{other}`")),
        };
        return Ok(Line {
            no,
            labels,
            directive: Some(directive),
            stmt: None,
        });
    }
    let mut parts = rest.splitn(2, char::is_whitespace);
    let mnemonic = parts.next().unwrap().to_lowercase();
    let operands: Vec<String> = parts
        .next()
        .unwrap_or("")
        .split(',')
        .map(|o| o.trim().to_string())
        .filter(|o| !o.is_empty())
        .collect();
    Ok(Line {
        no,
        labels,
        directive: None,
        stmt: Some(Stmt { mnemonic, operands }),
    })
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().unwrap().is_ascii_alphabetic()
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && parse_reg(s).is_none()
}

fn parse_reg(s: &str) -> Option<Reg> {
    let s = s.trim();
    if s.eq_ignore_ascii_case("zero") {
        return Some(Reg::ZERO);
    }
    let num = s.strip_prefix('r').or_else(|| s.strip_prefix('R'))?;
    let n: u8 = num.parse().ok()?;
    (n < 16).then_some(Reg(n))
}

fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(ch) = s
        .strip_prefix('\'')
        .and_then(|r| r.strip_suffix('\''))
        .filter(|r| r.chars().count() == 1)
    {
        return Some(ch.chars().next().unwrap() as i64);
    }
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn fits_simm16(v: i64) -> bool {
    (i64::from(IMM_MIN)..=i64::from(IMM_MAX)).contains(&v)
}

fn resolve_value(
    tok: &str,
    symbols: &BTreeMap<String, Symbol>,
    line: usize,
) -> Result<i64, AsmError> {
    if let Some(v) = parse_int(tok) {
        return Ok(v);
    }
    if let Some(sym) = symbols.get(tok.trim()) {
        return Ok(i64::from(sym.value()));
    }
    err(line, format!("unresolved symbol or bad literal `{tok}`"))
}

/// `imm(reg)` addressing, or bare `imm` meaning `imm(r0)`.
fn parse_addr(
    tok: &str,
    symbols: &BTreeMap<String, Symbol>,
    line: usize,
) -> Result<(Reg, i32), AsmError> {
    let tok = tok.trim();
    if let Some(open) = tok.find('(') {
        let close = tok.rfind(')').ok_or_else(|| AsmError {
            line,
            msg: format!("missing `)` in address `{tok}`"),
        })?;
        let base = parse_reg(&tok[open + 1..close]).ok_or_else(|| AsmError {
            line,
            msg: format!("bad base register in `{tok}`"),
        })?;
        let off_str = tok[..open].trim();
        let off = if off_str.is_empty() {
            0
        } else {
            resolve_value(off_str, symbols, line)?
        };
        check_simm(off, line)?;
        Ok((base, off as i32))
    } else {
        let off = resolve_value(tok, symbols, line)?;
        check_simm(off, line)?;
        Ok((Reg::ZERO, off as i32))
    }
}

fn check_simm(v: i64, line: usize) -> Result<(), AsmError> {
    if fits_simm16(v) {
        Ok(())
    } else {
        err(line, format!("immediate {v} out of signed 16-bit range"))
    }
}

fn get_reg(stmt: &Stmt, i: usize, line: usize) -> Result<Reg, AsmError> {
    let tok = stmt.operands.get(i).ok_or_else(|| AsmError {
        line,
        msg: format!("`{}` missing operand {}", stmt.mnemonic, i + 1),
    })?;
    parse_reg(tok).ok_or_else(|| AsmError {
        line,
        msg: format!("expected register, got `{tok}`"),
    })
}

fn get_tok(stmt: &Stmt, i: usize, line: usize) -> Result<&str, AsmError> {
    stmt.operands
        .get(i)
        .map(String::as_str)
        .ok_or_else(|| AsmError {
            line,
            msg: format!("`{}` missing operand {}", stmt.mnemonic, i + 1),
        })
}

fn lower_stmt(
    stmt: &Stmt,
    at: u32,
    symbols: &BTreeMap<String, Symbol>,
    line: usize,
) -> Result<Vec<Instr>, AsmError> {
    let m = stmt.mnemonic.as_str();

    // three-register ALU ops
    if let Some(op) = AluOp::ALL.iter().find(|o| o.mnemonic() == m) {
        return Ok(vec![Instr::Alu {
            op: *op,
            rd: get_reg(stmt, 0, line)?,
            rs1: get_reg(stmt, 1, line)?,
            rs2: get_reg(stmt, 2, line)?,
        }]);
    }
    // immediate ALU ops
    if let Some(op) = AluImmOp::ALL.iter().find(|o| o.mnemonic() == m) {
        let rd = get_reg(stmt, 0, line)?;
        let rs1 = get_reg(stmt, 1, line)?;
        let v = resolve_value(get_tok(stmt, 2, line)?, symbols, line)?;
        let range_ok = if op.zero_extends() {
            (0..=i64::from(UIMM_MAX)).contains(&v)
        } else {
            fits_simm16(v)
        };
        if !range_ok {
            return err(line, format!("immediate {v} out of range for `{m}`"));
        }
        if matches!(op, AluImmOp::Slli | AluImmOp::Srli) && !(0..=31).contains(&v) {
            return err(line, format!("shift amount {v} out of 0..=31"));
        }
        return Ok(vec![Instr::AluImm {
            op: *op,
            rd,
            rs1,
            imm: v as i32,
        }]);
    }
    // multiply family
    for op in [MulOp::Mul, MulOp::Div, MulOp::Rem] {
        if op.mnemonic() == m {
            return Ok(vec![Instr::Mul {
                op,
                rd: get_reg(stmt, 0, line)?,
                rs1: get_reg(stmt, 1, line)?,
                rs2: get_reg(stmt, 2, line)?,
            }]);
        }
    }
    // branches
    for cond in [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Ge,
    ] {
        if cond.mnemonic() == m {
            let rs1 = get_reg(stmt, 0, line)?;
            let rs2 = get_reg(stmt, 1, line)?;
            let t = resolve_value(get_tok(stmt, 2, line)?, symbols, line)?;
            if !(0..=i64::from(BRANCH_TARGET_MAX)).contains(&t) {
                return err(line, format!("branch target {t} out of range"));
            }
            return Ok(vec![Instr::Branch {
                cond,
                rs1,
                rs2,
                target: t as u32,
            }]);
        }
    }

    match m {
        "lui" => {
            let rd = get_reg(stmt, 0, line)?;
            let v = resolve_value(get_tok(stmt, 1, line)?, symbols, line)?;
            if !(0..=0xFFFF).contains(&v) {
                return err(line, format!("lui immediate {v} out of 16-bit range"));
            }
            Ok(vec![Instr::Lui { rd, imm: v as u16 }])
        }
        "ld" => {
            let rd = get_reg(stmt, 0, line)?;
            let (rs1, imm) = parse_addr(get_tok(stmt, 1, line)?, symbols, line)?;
            Ok(vec![Instr::Ld { rd, rs1, imm }])
        }
        "st" => {
            let rs2 = get_reg(stmt, 0, line)?;
            let (rs1, imm) = parse_addr(get_tok(stmt, 1, line)?, symbols, line)?;
            Ok(vec![Instr::St { rs2, rs1, imm }])
        }
        "jal" => {
            let rd = get_reg(stmt, 0, line)?;
            let t = resolve_value(get_tok(stmt, 1, line)?, symbols, line)?;
            if !(0..=i64::from(TARGET_MAX)).contains(&t) {
                return err(line, format!("jump target {t} out of range"));
            }
            Ok(vec![Instr::Jal {
                rd,
                target: t as u32,
            }])
        }
        "jalr" => {
            let rd = get_reg(stmt, 0, line)?;
            let rs1 = get_reg(stmt, 1, line)?;
            let v = match stmt.operands.get(2) {
                Some(tok) => {
                    let v = resolve_value(tok, symbols, line)?;
                    check_simm(v, line)?;
                    v as i32
                }
                None => 0,
            };
            Ok(vec![Instr::Jalr { rd, rs1, imm: v }])
        }
        "yield" => Ok(vec![Instr::Yield]),
        "halt" => Ok(vec![Instr::Halt]),
        "nop" => Ok(vec![Instr::Nop]),
        // ---- pseudo-instructions ----
        "j" => {
            let t = resolve_value(get_tok(stmt, 0, line)?, symbols, line)?;
            if !(0..=i64::from(TARGET_MAX)).contains(&t) {
                return err(line, format!("jump target {t} out of range"));
            }
            Ok(vec![Instr::Jal {
                rd: Reg::ZERO,
                target: t as u32,
            }])
        }
        "mv" => Ok(vec![Instr::AluImm {
            op: AluImmOp::Addi,
            rd: get_reg(stmt, 0, line)?,
            rs1: get_reg(stmt, 1, line)?,
            imm: 0,
        }]),
        // call/ret use r15 as the conventional link register
        "call" => {
            let t = resolve_value(get_tok(stmt, 0, line)?, symbols, line)?;
            if !(0..=i64::from(TARGET_MAX)).contains(&t) {
                return err(line, format!("call target {t} out of range"));
            }
            Ok(vec![Instr::Jal {
                rd: Reg(15),
                target: t as u32,
            }])
        }
        "ret" => Ok(vec![Instr::Jalr {
            rd: Reg::ZERO,
            rs1: Reg(15),
            imm: 0,
        }]),
        // bgt/ble swap operands of blt/bge: a > b ⇔ b < a
        "bgt" | "ble" => {
            let rs1 = get_reg(stmt, 0, line)?;
            let rs2 = get_reg(stmt, 1, line)?;
            let t = resolve_value(get_tok(stmt, 2, line)?, symbols, line)?;
            if !(0..=i64::from(BRANCH_TARGET_MAX)).contains(&t) {
                return err(line, format!("branch target {t} out of range"));
            }
            Ok(vec![Instr::Branch {
                cond: if m == "bgt" {
                    BranchCond::Lt
                } else {
                    BranchCond::Ge
                },
                rs1: rs2,
                rs2: rs1,
                target: t as u32,
            }])
        }
        "neg" => Ok(vec![Instr::Alu {
            op: AluOp::Sub,
            rd: get_reg(stmt, 0, line)?,
            rs1: Reg::ZERO,
            rs2: get_reg(stmt, 1, line)?,
        }]),
        "subi" => {
            let rd = get_reg(stmt, 0, line)?;
            let rs1 = get_reg(stmt, 1, line)?;
            let v = resolve_value(get_tok(stmt, 2, line)?, symbols, line)?;
            check_simm(-v, line)?;
            Ok(vec![Instr::AluImm {
                op: AluImmOp::Addi,
                rd,
                rs1,
                imm: -v as i32,
            }])
        }
        "li" => {
            let rd = get_reg(stmt, 0, line)?;
            let v = resolve_value(get_tok(stmt, 1, line)?, symbols, line)?;
            if !(i64::from(i32::MIN)..=i64::from(u32::MAX)).contains(&v) {
                return err(line, format!("li value {v} out of 32-bit range"));
            }
            let bits = v as u32; // two's complement view
            let committed = stmt.size();
            if committed == 1 {
                Ok(vec![Instr::AluImm {
                    op: AluImmOp::Addi,
                    rd,
                    rs1: Reg::ZERO,
                    imm: bits as i32,
                }])
            } else {
                // label operands were sized at 2 in pass 1; emit the long
                // form even if the resolved value would fit, so addresses
                // stay consistent. `at` is unused but kept for symmetry.
                let _ = at;
                Ok(vec![
                    Instr::Lui {
                        rd,
                        imm: (bits >> 16) as u16,
                    },
                    Instr::AluImm {
                        op: AluImmOp::Ori,
                        rd,
                        rs1: rd,
                        imm: (bits & 0xFFFF) as i32,
                    },
                ])
            }
        }
        other => err(line, format!("unknown mnemonic `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::decode;

    fn decode_all(p: &Program) -> Vec<Instr> {
        p.text.iter().map(|&w| decode(w).unwrap()).collect()
    }

    #[test]
    fn minimal_program() {
        let p = assemble("addi r1, r0, 7\nhalt\n").unwrap();
        assert_eq!(
            decode_all(&p),
            vec![
                Instr::AluImm {
                    op: AluImmOp::Addi,
                    rd: Reg(1),
                    rs1: Reg(0),
                    imm: 7
                },
                Instr::Halt
            ]
        );
    }

    #[test]
    fn labels_and_branches() {
        let p = assemble(
            r#"
            .text
            start:
                addi r1, r0, 3
            loop:
                subi r1, r1, 1
                bne  r1, r0, loop
                j    start
                halt
            "#,
        )
        .unwrap();
        let is = decode_all(&p);
        assert_eq!(
            is[2],
            Instr::Branch {
                cond: BranchCond::Ne,
                rs1: Reg(1),
                rs2: Reg(0),
                target: 1
            }
        );
        assert_eq!(
            is[3],
            Instr::Jal {
                rd: Reg::ZERO,
                target: 0
            }
        );
    }

    #[test]
    fn data_section_words_and_space() {
        let p = assemble(
            r#"
            .data
            a:  .word 1, 2, 3
            b:  .space 2
            c:  .word 0xFF
            .text
                ld r1, a(r0)
                ld r2, c(r0)
                halt
            "#,
        )
        .unwrap();
        assert_eq!(p.data, vec![1, 2, 3, 0, 0, 0xFF]);
        assert_eq!(p.symbol("a"), Some(Symbol::Data(0)));
        assert_eq!(p.symbol("b"), Some(Symbol::Data(3)));
        assert_eq!(p.symbol("c"), Some(Symbol::Data(5)));
        let is = decode_all(&p);
        assert_eq!(
            is[1],
            Instr::Ld {
                rd: Reg(2),
                rs1: Reg(0),
                imm: 5
            }
        );
    }

    #[test]
    fn li_small_and_large() {
        let p = assemble("li r1, 100\nli r2, 0xDEADBEEF\nhalt\n").unwrap();
        let is = decode_all(&p);
        assert_eq!(is.len(), 4); // 1 + 2 + halt
        assert_eq!(
            is[0],
            Instr::AluImm {
                op: AluImmOp::Addi,
                rd: Reg(1),
                rs1: Reg(0),
                imm: 100
            }
        );
        assert_eq!(
            is[1],
            Instr::Lui {
                rd: Reg(2),
                imm: 0xDEAD
            }
        );
        assert_eq!(
            is[2],
            Instr::AluImm {
                op: AluImmOp::Ori,
                rd: Reg(2),
                rs1: Reg(2),
                imm: 0xBEEF
            }
        );
    }

    #[test]
    fn li_expansion_keeps_label_addresses_straight() {
        // The li of a large constant occupies two slots; the label after
        // it must account for that.
        let p = assemble(
            r#"
                li r1, 0x12345678
            after:
                halt
            "#,
        )
        .unwrap();
        assert_eq!(p.symbol("after"), Some(Symbol::Text(2)));
    }

    #[test]
    fn addressing_modes() {
        let p = assemble("ld r1, 4(r2)\nst r3, -4(r4)\nld r5, 9\nhalt\n").unwrap();
        let is = decode_all(&p);
        assert_eq!(
            is[0],
            Instr::Ld {
                rd: Reg(1),
                rs1: Reg(2),
                imm: 4
            }
        );
        assert_eq!(
            is[1],
            Instr::St {
                rs2: Reg(3),
                rs1: Reg(4),
                imm: -4
            }
        );
        assert_eq!(
            is[2],
            Instr::Ld {
                rd: Reg(5),
                rs1: Reg(0),
                imm: 9
            }
        );
    }

    #[test]
    fn comments_and_blank_lines() {
        let p = assemble("; header\n\n  # another\nnop ; trailing\nhalt\n").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn zero_alias() {
        let p = assemble("add r1, zero, r2\nhalt\n").unwrap();
        assert_eq!(
            decode_all(&p)[0],
            Instr::Alu {
                op: AluOp::Add,
                rd: Reg(1),
                rs1: Reg(0),
                rs2: Reg(2)
            }
        );
    }

    #[test]
    fn char_literals() {
        let p = assemble("li r1, 'A'\nhalt\n").unwrap();
        assert_eq!(
            decode_all(&p)[0],
            Instr::AluImm {
                op: AluImmOp::Addi,
                rd: Reg(1),
                rs1: Reg(0),
                imm: 65
            }
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nfrobnicate r1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("frobnicate"));

        let e = assemble("addi r1, r0, 99999\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.msg.contains("out of range"), "{}", e.msg);

        let e = assemble("beq r1, r2, nowhere\n").unwrap_err();
        assert!(e.msg.contains("nowhere"));
    }

    #[test]
    fn duplicate_labels_rejected() {
        let e = assemble("x:\nnop\nx:\nhalt\n").unwrap_err();
        assert!(e.msg.contains("duplicate"));
    }

    #[test]
    fn instruction_in_data_section_rejected() {
        let e = assemble(".data\nnop\n").unwrap_err();
        assert!(e.msg.contains("outside .text"));
    }

    #[test]
    fn shift_range_checked() {
        let e = assemble("slli r1, r1, 32\n").unwrap_err();
        assert!(e.msg.contains("shift amount"));
    }

    #[test]
    fn call_ret_pseudo_ops() {
        let p = assemble(
            r#"
                call func
                st   r3, 0(r0)
                halt
            func:
                addi r3, r0, 77
                ret
            "#,
        )
        .unwrap();
        let is = decode_all(&p);
        assert_eq!(
            is[0],
            Instr::Jal {
                rd: Reg(15),
                target: 3
            }
        );
        assert_eq!(
            is[4],
            Instr::Jalr {
                rd: Reg::ZERO,
                rs1: Reg(15),
                imm: 0
            }
        );
    }

    #[test]
    fn bgt_ble_swap_operands() {
        let p = assemble("bgt r1, r2, 0\nble r3, r4, 0\nhalt\n").unwrap();
        let is = decode_all(&p);
        assert_eq!(
            is[0],
            Instr::Branch {
                cond: BranchCond::Lt,
                rs1: Reg(2),
                rs2: Reg(1),
                target: 0
            }
        );
        assert_eq!(
            is[1],
            Instr::Branch {
                cond: BranchCond::Ge,
                rs1: Reg(4),
                rs2: Reg(3),
                target: 0
            }
        );
    }

    #[test]
    fn neg_pseudo_op() {
        let p = assemble("neg r1, r2\nhalt\n").unwrap();
        assert_eq!(
            decode_all(&p)[0],
            Instr::Alu {
                op: AluOp::Sub,
                rd: Reg(1),
                rs1: Reg::ZERO,
                rs2: Reg(2)
            }
        );
    }

    #[test]
    fn label_on_same_line_as_instruction() {
        let p = assemble("start: nop\nloop: halt\n").unwrap();
        assert_eq!(p.symbol("start"), Some(Symbol::Text(0)));
        assert_eq!(p.symbol("loop"), Some(Symbol::Text(1)));
    }
}
