//! The SMT core: thread contexts, shared functional units, shared caches,
//! cycle-by-cycle execution.
//!
//! ## Pipeline model
//!
//! In-order, architecturally-atomic execution: each cycle, threads are
//! considered in a deterministic priority order (round-robin rotation or
//! ICOUNT); a thread issues at most one instruction per cycle, subject to
//!
//! * total issue width,
//! * a free functional unit of the required class (multi-cycle ops reserve
//!   their unit),
//! * instruction-cache hit (miss parks the thread for the memory latency),
//! * not being parked by a previous data-cache miss, multi-cycle op or
//!   branch-mispredict flush.
//!
//! This is far simpler than a real out-of-order SMT pipeline, but it
//! produces the behaviour the paper's model needs: a single thread leaves
//! issue slots and stall cycles unused; a second thread fills them;
//! co-run time is `2αt` with α somewhere in `(½, 1)` depending on how the
//! workloads collide on units and caches.
//!
//! ## Faults
//!
//! The core carries optional **permanent functional-unit faults**
//! ([`FuFault`]): results computed on a specific unit get a bit forced.
//! Because diverse program versions schedule work onto units differently,
//! a single faulty unit corrupts them differently — the property the VDS
//! diversity argument relies on. Transient faults are injected from
//! outside by mutating [`Thread::regs`], [`Thread::dmem`] or program text
//! (see `vds-fault`).

use crate::branch::{Predictor, PredictorKind};
use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::encode::decode;
use crate::isa::{FuClass, Instr, Reg};
use crate::perf::{StallCause, ThreadCounters};
use crate::program::Program;

/// Identifies a hardware thread context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub usize);

/// Why a thread stopped executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// Load/store outside the thread's address space. The paper's system
    /// model: "an access to the data of another version … leads to an
    /// access violation which is signaled as a fault but leaves the other
    /// version's data unchanged."
    AccessViolation {
        /// Offending word address.
        addr: u32,
    },
    /// Fetched word does not decode (corrupted program memory).
    IllegalInstruction {
        /// Instruction index.
        pc: u32,
    },
    /// Control flow left the text section.
    PcOutOfRange {
        /// Offending instruction index.
        pc: u32,
    },
}

/// Scheduling state of a hardware thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Can issue.
    Ready,
    /// Parked until the given cycle (cache miss, multi-cycle op, flush).
    StalledUntil(u64),
    /// Executed `yield` — end of a VDS round; host must resume it.
    Yielded,
    /// Executed `halt`.
    Halted,
    /// Took a trap; host decides what to do.
    Trapped(Trap),
}

/// Fetch/issue priority policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FetchPolicy {
    /// Rotate thread priority every cycle.
    #[default]
    RoundRobin,
    /// Prefer the thread with the fewest retired instructions (a crude,
    /// deterministic stand-in for ICOUNT).
    ICount,
}

/// A permanent hardware fault pinned to one functional unit: bit
/// `bit` of every result computed on that unit is forced to `value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuFault {
    /// Functional-unit class.
    pub class: FuClass,
    /// Unit index within the class.
    pub unit: usize,
    /// Which result bit is stuck.
    pub bit: u8,
    /// Stuck-at value.
    pub value: bool,
}

impl FuFault {
    /// Apply the fault to a result value.
    #[inline]
    pub fn corrupt(&self, result: u32) -> u32 {
        if self.value {
            result | (1 << self.bit)
        } else {
            result & !(1 << self.bit)
        }
    }
}

/// Core configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Hardware thread contexts (the paper's machine: 2).
    pub max_threads: usize,
    /// Instructions issued per cycle across all threads.
    pub issue_width: usize,
    /// Single-cycle ALUs.
    pub num_alu: usize,
    /// Multi-cycle multiply/divide units.
    pub num_mul: usize,
    /// Load/store units.
    pub num_mem: usize,
    /// Branch units.
    pub num_branch: usize,
    /// Shared instruction cache.
    pub icache: CacheConfig,
    /// Shared data cache.
    pub dcache: CacheConfig,
    /// Main-memory latency in cycles (applied to I/D misses).
    pub mem_latency: u32,
    /// Extra cycles a load stalls its thread even on a D-cache hit
    /// (load-use delay).
    pub load_use_delay: u32,
    /// Cycles a store miss stalls its thread (write-allocate fill;
    /// cheaper than a load miss thanks to the store buffer).
    pub store_miss_latency: u32,
    /// Branch mispredict flush penalty in cycles.
    pub mispredict_penalty: u32,
    /// Branch predictor per thread.
    pub predictor: PredictorKind,
    /// Thread priority policy.
    pub fetch_policy: FetchPolicy,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            max_threads: 2,
            issue_width: 2,
            num_alu: 2,
            num_mul: 1,
            num_mem: 1,
            num_branch: 1,
            icache: CacheConfig {
                sets: 128,
                ways: 2,
                line_words: 8,
            },
            dcache: CacheConfig::small(),
            mem_latency: 20,
            load_use_delay: 1,
            store_miss_latency: 4,
            mispredict_penalty: 3,
            predictor: PredictorKind::default(),
            fetch_policy: FetchPolicy::RoundRobin,
        }
    }
}

impl CoreConfig {
    /// A configuration approximating a *conventional* (1-context)
    /// processor of the same microarchitecture.
    pub fn single_threaded() -> Self {
        CoreConfig {
            max_threads: 1,
            ..CoreConfig::default()
        }
    }

    /// A wider SMT core with `n` contexts (for the §5 boosted variants).
    pub fn with_threads(n: usize) -> Self {
        CoreConfig {
            max_threads: n,
            ..CoreConfig::default()
        }
    }
}

/// A hardware thread context and its private architectural state.
#[derive(Debug, Clone)]
pub struct Thread {
    /// General registers; `regs[0]` is kept at zero after every step.
    pub regs: [u32; Reg::COUNT],
    /// Next instruction index.
    pub pc: u32,
    /// The program this context executes.
    pub prog: Program,
    /// Private data memory (word-addressed address space).
    pub dmem: Vec<u32>,
    /// Scheduling state.
    pub state: ThreadState,
    /// Performance counters.
    pub counters: ThreadCounters,
    predictor: Predictor,
    stall_cause: StallCause,
    /// Fill-buffer: a completed I-cache miss for this pc is delivered to
    /// the pipeline even if the line has been evicted again meanwhile.
    /// Without this, N > ways fetch streams aliasing one set livelock by
    /// mutually evicting each other's lines — real front-ends keep the
    /// in-flight line in a fill buffer for exactly this reason.
    fetch_fill: Option<u32>,
}

impl Thread {
    fn new(prog: &Program, dmem_words: usize, predictor: PredictorKind) -> Self {
        assert!(
            prog.data.len() <= dmem_words,
            "data image ({} words) exceeds address space ({} words)",
            prog.data.len(),
            dmem_words
        );
        let mut dmem = prog.data.clone();
        dmem.resize(dmem_words, 0);
        Thread {
            regs: [0; Reg::COUNT],
            pc: prog.entry,
            prog: prog.clone(),
            dmem,
            state: ThreadState::Ready,
            counters: ThreadCounters::default(),
            predictor: Predictor::new(predictor),
            stall_cause: StallCause::Parked,
            fetch_fill: None,
        }
    }

    /// `true` if the thread may still make progress on its own.
    pub fn is_live(&self) -> bool {
        matches!(
            self.state,
            ThreadState::Ready | ThreadState::StalledUntil(_)
        )
    }

    /// 128-bit digest of the thread's architectural state (registers, pc,
    /// data memory) — the same quantity a VDS comparison round hashes, in
    /// canonical order. Micro-architectural state (caches, predictor,
    /// counters) is deliberately excluded: two contexts that agree
    /// architecturally must digest equal even if they took different
    /// timing paths. Used by the checkpoint layer and the flight-recorder
    /// journal.
    pub fn state_digest(&self) -> vds_obs::Digest128 {
        let mut d = vds_obs::Digester128::new();
        d.push_words(&self.regs);
        d.push_word(self.pc);
        d.push_words(&self.dmem);
        d.finish()
    }
}

/// Saved architectural state for OS-level context switching
/// (`vds-sched`). Caches and predictors deliberately stay behind —
/// the pollution a context switch causes is part of the model.
#[derive(Debug, Clone)]
pub struct SavedContext {
    /// Register file.
    pub regs: [u32; Reg::COUNT],
    /// Program counter.
    pub pc: u32,
    /// Program image.
    pub prog: Program,
    /// Data memory.
    pub dmem: Vec<u32>,
    /// Scheduling state at save time.
    pub state: ThreadState,
}

/// Outcome of [`Core::run_until_all_blocked`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every thread halted.
    AllHalted,
    /// No thread can issue; at least one yielded (others halted/yielded).
    AllYielded,
    /// A thread trapped (execution of the others stops too so the host
    /// can react; the paper's fault model allows a fault to stop the
    /// whole processor).
    Trapped(ThreadId, Trap),
    /// The cycle budget ran out first.
    CycleBudgetExhausted,
}

#[derive(Debug, Clone, Copy)]
struct FuReservation {
    class: FuClass,
    unit: usize,
    until: u64,
}

/// A closed pipeline window of one hardware thread: the cycle range from
/// the thread becoming runnable to it parking (yield / halt / trap /
/// context switch), with the instructions it issued and retired inside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineWindow {
    /// Hardware thread index.
    pub thread: usize,
    /// First cycle of the window.
    pub start_cycle: u64,
    /// Last cycle of the window.
    pub end_cycle: u64,
    /// Cycles in which the thread issued an instruction.
    pub issued: u64,
    /// Instructions retired during the window.
    pub retired: u64,
}

/// Cap on recorded pipeline windows (drops are counted, not silent).
const MAX_WINDOWS: usize = 16_384;

/// The simultaneous multithreaded core.
#[derive(Debug, Clone)]
pub struct Core {
    cfg: CoreConfig,
    threads: Vec<Thread>,
    icache: Cache,
    dcache: Cache,
    cycle: u64,
    reservations: Vec<FuReservation>,
    faults: Vec<FuFault>,
    rr_offset: usize,
    record_windows: bool,
    windows: Vec<PipelineWindow>,
    /// Per-thread open window: (start_cycle, issued-at-start,
    /// retired-at-start) counter snapshots.
    open_windows: Vec<Option<(u64, u64, u64)>>,
    windows_dropped: u64,
    /// Scratch buffers reused across [`Core::step`] calls so the hot
    /// per-cycle loop allocates nothing.
    order_scratch: Vec<usize>,
    used_scratch: Vec<(FuClass, usize)>,
}

impl Core {
    /// Build a core with no threads.
    pub fn new(cfg: CoreConfig) -> Self {
        assert!(cfg.max_threads >= 1);
        assert!(cfg.issue_width >= 1);
        assert!(cfg.num_alu >= 1 && cfg.num_mul >= 1 && cfg.num_mem >= 1 && cfg.num_branch >= 1);
        let icache = Cache::new(cfg.icache);
        let dcache = Cache::new(cfg.dcache);
        Core {
            cfg,
            threads: Vec::new(),
            icache,
            dcache,
            cycle: 0,
            reservations: Vec::new(),
            faults: Vec::new(),
            rr_offset: 0,
            record_windows: false,
            windows: Vec::new(),
            open_windows: Vec::new(),
            windows_dropped: 0,
            order_scratch: Vec::new(),
            used_scratch: Vec::new(),
        }
    }

    /// Enable or disable pipeline-window span recording (off by default;
    /// the windows feed [`Core::export_spans`]).
    pub fn set_window_recording(&mut self, on: bool) {
        self.record_windows = on;
    }

    fn open_window(&mut self, tid: usize) {
        if self.open_windows.len() < self.threads.len() {
            self.open_windows.resize(self.threads.len(), None);
        }
        if self.open_windows[tid].is_none() {
            let c = &self.threads[tid].counters;
            self.open_windows[tid] = Some((self.cycle, c.issued_cycles, c.retired));
        }
    }

    fn close_window(&mut self, tid: usize) {
        let Some(open) = self.open_windows.get_mut(tid) else {
            return;
        };
        let Some((start, issued0, retired0)) = open.take() else {
            return;
        };
        if self.windows.len() >= MAX_WINDOWS {
            self.windows_dropped += 1;
            return;
        }
        let c = &self.threads[tid].counters;
        self.windows.push(PipelineWindow {
            thread: tid,
            start_cycle: start,
            end_cycle: self.cycle,
            issued: c.issued_cycles - issued0,
            retired: c.retired - retired0,
        });
    }

    /// Configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Current cycle count.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Install a thread running `prog` with a `dmem_words`-word private
    /// address space. Returns its id.
    ///
    /// # Panics
    /// Panics if all hardware contexts are occupied.
    pub fn add_thread(&mut self, prog: &Program, dmem_words: usize) -> ThreadId {
        assert!(
            self.threads.len() < self.cfg.max_threads,
            "no free hardware context (max {})",
            self.cfg.max_threads
        );
        self.threads
            .push(Thread::new(prog, dmem_words, self.cfg.predictor));
        ThreadId(self.threads.len() - 1)
    }

    /// Immutable access to a thread.
    pub fn thread(&self, id: ThreadId) -> &Thread {
        &self.threads[id.0]
    }

    /// Windowed counter snapshots of every installed thread, in thread
    /// order: the cycle-accounting view at the current cycle, suitable
    /// for differential α attribution (`vds_obs::alpha`). Snapshots can
    /// be taken mid-run and subtracted to scope a ledger to a window.
    pub fn counter_snapshots(&self) -> Vec<vds_obs::alpha::CycleSnapshot> {
        self.threads.iter().map(|t| t.counters.snapshot()).collect()
    }

    /// Mutable access to a thread (fault injection, host fix-ups).
    pub fn thread_mut(&mut self, id: ThreadId) -> &mut Thread {
        &mut self.threads[id.0]
    }

    /// Number of installed threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Install a permanent functional-unit fault.
    pub fn inject_fu_fault(&mut self, fault: FuFault) {
        self.faults.push(fault);
    }

    /// Remove all permanent faults.
    pub fn clear_fu_faults(&mut self) {
        self.faults.clear();
    }

    /// Shared I-cache statistics.
    pub fn icache_stats(&self) -> CacheStats {
        self.icache.stats()
    }

    /// Shared D-cache statistics.
    pub fn dcache_stats(&self) -> CacheStats {
        self.dcache.stats()
    }

    /// Flush core state into a metrics registry: total cycles, per-thread
    /// counters under `smt.thread<i>.*`, and shared cache hit/miss/conflict
    /// counts under `smt.icache.*` / `smt.dcache.*`.
    pub fn export_metrics<R: vds_obs::Record>(&self, rec: &mut R) {
        rec.count("smt.cycles", self.cycle);
        for (i, t) in self.threads.iter().enumerate() {
            t.counters.export_metrics(rec, &format!("smt.thread{i}"));
        }
        for (name, stats) in [
            ("icache", self.icache.stats()),
            ("dcache", self.dcache.stats()),
        ] {
            rec.count(&format!("smt.{name}.hits"), stats.hits);
            rec.count(&format!("smt.{name}.misses"), stats.misses);
            rec.count(
                &format!("smt.{name}.thread_conflicts"),
                stats.thread_conflicts,
            );
            rec.gauge(&format!("smt.{name}.hit_rate"), stats.hit_rate());
        }
    }

    /// Export recorded pipeline windows as spans (component `"smt"`, one
    /// lane per hardware thread). Still-open windows are clamped to the
    /// current cycle without being consumed.
    pub fn export_spans<R: vds_obs::Record>(&self, rec: &mut R) {
        let window_fields = |issued: u64, retired: u64| {
            vec![
                ("issued", vds_obs::Value::from(issued)),
                ("retired", vds_obs::Value::from(retired)),
            ]
        };
        for w in &self.windows {
            rec.record_span(vds_obs::SpanRecord {
                begin: w.start_cycle as f64,
                end: w.end_cycle as f64,
                component: "smt",
                name: "pipeline",
                tid: w.thread as u32,
                fields: window_fields(w.issued, w.retired),
            });
        }
        for (tid, open) in self.open_windows.iter().enumerate() {
            if let Some((start, issued0, retired0)) = open {
                let c = &self.threads[tid].counters;
                rec.record_span(vds_obs::SpanRecord {
                    begin: *start as f64,
                    end: self.cycle as f64,
                    component: "smt",
                    name: "pipeline",
                    tid: tid as u32,
                    fields: window_fields(c.issued_cycles - issued0, c.retired - retired0),
                });
            }
        }
        if self.windows_dropped > 0 {
            rec.count("smt.windows_dropped", self.windows_dropped);
        }
    }

    /// Park a thread for `cycles` cycles (the OS layer uses this to
    /// charge context-switch overhead to the hardware thread).
    ///
    /// # Panics
    /// Panics if the thread has halted or trapped.
    pub fn park_thread(&mut self, id: ThreadId, cycles: u32) {
        let t = &mut self.threads[id.0];
        assert!(
            matches!(
                t.state,
                ThreadState::Ready | ThreadState::StalledUntil(_) | ThreadState::Yielded
            ),
            "cannot park a thread in state {:?}",
            t.state
        );
        t.state = ThreadState::StalledUntil(self.cycle + u64::from(cycles));
        t.stall_cause = StallCause::Parked;
    }

    /// Resume a yielded thread.
    ///
    /// # Panics
    /// Panics if the thread is not in [`ThreadState::Yielded`].
    pub fn resume(&mut self, id: ThreadId) {
        let t = &mut self.threads[id.0];
        assert_eq!(
            t.state,
            ThreadState::Yielded,
            "resume() requires a yielded thread"
        );
        t.state = ThreadState::Ready;
    }

    /// Save a thread's architectural state and replace it with another
    /// (the OS context switch). Returns the previous context. The incoming
    /// context's `state` is restored as saved.
    pub fn swap_context(&mut self, id: ThreadId, incoming: SavedContext) -> SavedContext {
        if self.record_windows {
            self.close_window(id.0);
        }
        let t = &mut self.threads[id.0];
        let outgoing = SavedContext {
            regs: t.regs,
            pc: t.pc,
            prog: std::mem::take(&mut t.prog),
            dmem: std::mem::take(&mut t.dmem),
            state: t.state,
        };
        t.regs = incoming.regs;
        t.pc = incoming.pc;
        t.prog = incoming.prog;
        t.dmem = incoming.dmem;
        t.state = incoming.state;
        t.fetch_fill = None; // the fill buffer belongs to the old stream
        outgoing
    }

    fn priority_order_into(&self, order: &mut Vec<usize>) {
        let n = self.threads.len();
        order.clear();
        order.extend(0..n);
        match self.cfg.fetch_policy {
            FetchPolicy::RoundRobin => {
                order.rotate_left(self.rr_offset % n.max(1));
            }
            FetchPolicy::ICount => {
                order.sort_by_key(|&i| (self.threads[i].counters.retired, i));
            }
        }
    }

    fn free_unit(&self, class: FuClass, used_this_cycle: &[(FuClass, usize)]) -> Option<usize> {
        let count = match class {
            FuClass::Alu => self.cfg.num_alu,
            FuClass::MulDiv => self.cfg.num_mul,
            FuClass::Mem => self.cfg.num_mem,
            FuClass::Branch => self.cfg.num_branch,
            FuClass::None => return Some(0),
        };
        (0..count).find(|&u| {
            !self
                .reservations
                .iter()
                .any(|r| r.class == class && r.unit == u && r.until > self.cycle)
                && !used_this_cycle.contains(&(class, u))
        })
    }

    fn corrupt(&self, class: FuClass, unit: usize, result: u32) -> u32 {
        let mut v = result;
        for f in &self.faults {
            if f.class == class && f.unit == unit {
                v = f.corrupt(v);
            }
        }
        v
    }

    /// Advance one cycle. Returns `true` if any thread issued.
    pub fn step(&mut self) -> bool {
        self.cycle += 1;
        self.reservations.retain(|r| r.until > self.cycle);
        let mut order = std::mem::take(&mut self.order_scratch);
        self.priority_order_into(&mut order);
        self.rr_offset = self.rr_offset.wrapping_add(1);

        let mut issued = 0usize;
        let mut used = std::mem::take(&mut self.used_scratch);
        used.clear();
        let mut any = false;

        for &tid in &order {
            // per-cycle bookkeeping
            self.threads[tid].counters.cycles += 1;
            if self.record_windows {
                match self.threads[tid].state {
                    ThreadState::Yielded | ThreadState::Halted | ThreadState::Trapped(_) => {
                        self.close_window(tid);
                    }
                    _ => self.open_window(tid),
                }
            }
            match self.threads[tid].state {
                ThreadState::StalledUntil(until) => {
                    if self.cycle >= until {
                        self.threads[tid].state = ThreadState::Ready;
                    } else {
                        let cause = self.threads[tid].stall_cause;
                        self.threads[tid].counters.stall(cause);
                        continue;
                    }
                }
                ThreadState::Yielded | ThreadState::Halted | ThreadState::Trapped(_) => {
                    self.threads[tid].counters.stall(StallCause::Parked);
                    continue;
                }
                ThreadState::Ready => {}
            }

            if issued >= self.cfg.issue_width {
                self.threads[tid].counters.stall(StallCause::Width);
                continue;
            }

            // fetch
            let pc = self.threads[tid].pc;
            if pc as usize >= self.threads[tid].prog.text.len() {
                self.threads[tid].state = ThreadState::Trapped(Trap::PcOutOfRange { pc });
                // The trap-transition cycle is neither an issue nor a
                // cause-specific stall; book it as parked so the
                // conservation invariant (issued + stalls + parked ==
                // cycles) holds on trapping runs too.
                self.threads[tid].counters.stall(StallCause::Parked);
                continue;
            }
            let fill_hit = self.threads[tid].fetch_fill.take() == Some(pc);
            if !fill_hit && !self.icache.access(tid as u8, pc) {
                // the line arrives after the memory latency and is held
                // in the fill buffer, immune to eviction by siblings
                self.threads[tid].fetch_fill = Some(pc);
                self.stall(tid, self.cfg.mem_latency, StallCause::ICache);
                // no issue happened this cycle, so count it as stalled
                self.threads[tid].counters.stall(StallCause::ICache);
                continue;
            }
            let word = self.threads[tid].prog.text[pc as usize];
            let instr = match decode(word) {
                Ok(i) => i,
                Err(_) => {
                    self.threads[tid].state = ThreadState::Trapped(Trap::IllegalInstruction { pc });
                    // Same conservation bookkeeping as the fetch trap.
                    self.threads[tid].counters.stall(StallCause::Parked);
                    continue;
                }
            };

            // functional unit
            let class = instr.fu_class();
            let unit = match self.free_unit(class, &used) {
                Some(u) => u,
                None => {
                    self.threads[tid].counters.stall(StallCause::FuBusy);
                    continue;
                }
            };
            if class != FuClass::None {
                used.push((class, unit));
                let lat = instr.fu_latency();
                if lat > 1 {
                    self.reservations.push(FuReservation {
                        class,
                        unit,
                        until: self.cycle + u64::from(lat),
                    });
                }
            }

            issued += 1;
            any = true;
            self.threads[tid].counters.issued_cycles += 1;
            self.execute(tid, &instr, class, unit);
            self.threads[tid].regs[0] = 0;
        }
        self.order_scratch = order;
        self.used_scratch = used;
        any
    }

    /// Park the thread; the stall cycles themselves are counted in
    /// [`Core::step`] while the thread sits in `StalledUntil`.
    fn stall(&mut self, tid: usize, cycles: u32, cause: StallCause) {
        let t = &mut self.threads[tid];
        t.state = ThreadState::StalledUntil(self.cycle + u64::from(cycles));
        t.stall_cause = cause;
    }

    #[inline]
    fn reg(&self, tid: usize, r: Reg) -> u32 {
        self.threads[tid].regs[r.idx()]
    }

    #[inline]
    fn set_reg(&mut self, tid: usize, r: Reg, v: u32) {
        self.threads[tid].regs[r.idx()] = v;
    }

    fn execute(&mut self, tid: usize, instr: &Instr, class: FuClass, unit: usize) {
        self.threads[tid].counters.retired += 1;
        let pc = self.threads[tid].pc;
        let mut next_pc = pc + 1;
        match *instr {
            Instr::Nop => {}
            Instr::Alu { op, rd, rs1, rs2 } => {
                let v = op.apply(self.reg(tid, rs1), self.reg(tid, rs2));
                let v = self.corrupt(class, unit, v);
                self.set_reg(tid, rd, v);
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                let v = op.apply(self.reg(tid, rs1), imm);
                let v = self.corrupt(class, unit, v);
                self.set_reg(tid, rd, v);
            }
            Instr::Lui { rd, imm } => {
                let v = self.corrupt(class, unit, u32::from(imm) << 16);
                self.set_reg(tid, rd, v);
            }
            Instr::Mul { op, rd, rs1, rs2 } => {
                let v = op.apply(self.reg(tid, rs1), self.reg(tid, rs2));
                let v = self.corrupt(class, unit, v);
                self.set_reg(tid, rd, v);
                // blocking in-order: the thread waits for its own result
                self.stall(tid, instr.fu_latency() - 1, StallCause::FuBusy);
            }
            Instr::Ld { rd, rs1, imm } => {
                self.threads[tid].counters.loads += 1;
                let addr = self.reg(tid, rs1).wrapping_add(imm as u32);
                if addr as usize >= self.threads[tid].dmem.len() {
                    self.threads[tid].state = ThreadState::Trapped(Trap::AccessViolation { addr });
                    return;
                }
                let v = self.threads[tid].dmem[addr as usize];
                let v = self.corrupt(class, unit, v);
                self.set_reg(tid, rd, v);
                let hit = self.dcache.access(tid as u8, addr);
                if hit {
                    if self.cfg.load_use_delay > 0 {
                        self.stall(tid, self.cfg.load_use_delay, StallCause::DCache);
                    }
                } else {
                    self.stall(tid, self.cfg.mem_latency, StallCause::DCache);
                }
            }
            Instr::St { rs2, rs1, imm } => {
                self.threads[tid].counters.stores += 1;
                let addr = self.reg(tid, rs1).wrapping_add(imm as u32);
                if addr as usize >= self.threads[tid].dmem.len() {
                    self.threads[tid].state = ThreadState::Trapped(Trap::AccessViolation { addr });
                    return;
                }
                let v = self.corrupt(class, unit, self.reg(tid, rs2));
                self.threads[tid].dmem[addr as usize] = v;
                let hit = self.dcache.access(tid as u8, addr);
                if !hit && self.cfg.store_miss_latency > 0 {
                    self.stall(tid, self.cfg.store_miss_latency, StallCause::DCache);
                }
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                self.threads[tid].counters.branches += 1;
                let taken = cond.holds(self.reg(tid, rs1), self.reg(tid, rs2));
                let correct = self.threads[tid].predictor.update(pc, taken);
                if taken {
                    next_pc = target;
                }
                if !correct {
                    self.threads[tid].counters.mispredicts += 1;
                    if self.cfg.mispredict_penalty > 0 {
                        self.stall(tid, self.cfg.mispredict_penalty, StallCause::BranchFlush);
                    }
                }
            }
            Instr::Jal { rd, target } => {
                let link = self.corrupt(class, unit, pc + 1);
                self.set_reg(tid, rd, link);
                next_pc = target;
            }
            Instr::Jalr { rd, rs1, imm } => {
                let dest = self.reg(tid, rs1).wrapping_add(imm as u32);
                let link = self.corrupt(class, unit, pc + 1);
                self.set_reg(tid, rd, link);
                next_pc = dest;
            }
            Instr::Yield => {
                self.threads[tid].state = ThreadState::Yielded;
            }
            Instr::Halt => {
                self.threads[tid].state = ThreadState::Halted;
                return; // pc frozen at the halt
            }
        }
        self.threads[tid].pc = next_pc;
    }

    /// Run until no thread can make progress or `max_cycles` elapse.
    pub fn run_until_all_blocked(&mut self, max_cycles: u64) -> RunOutcome {
        let deadline = self.cycle + max_cycles;
        loop {
            if let Some((i, t)) = self
                .threads
                .iter()
                .enumerate()
                .find(|(_, t)| matches!(t.state, ThreadState::Trapped(_)))
            {
                let ThreadState::Trapped(trap) = t.state else {
                    unreachable!()
                };
                return RunOutcome::Trapped(ThreadId(i), trap);
            }
            if !self.threads.iter().any(Thread::is_live) {
                return if self.threads.iter().any(|t| t.state == ThreadState::Yielded) {
                    RunOutcome::AllYielded
                } else {
                    RunOutcome::AllHalted
                };
            }
            if self.cycle >= deadline {
                return RunOutcome::CycleBudgetExhausted;
            }
            self.step();
        }
    }

    /// Run until the *given* thread yields, halts or traps (other threads
    /// keep executing concurrently — this is how the VDS engine runs one
    /// round of one version on an SMT machine).
    pub fn run_until_thread_blocks(&mut self, id: ThreadId, max_cycles: u64) -> RunOutcome {
        let deadline = self.cycle + max_cycles;
        loop {
            match self.threads[id.0].state {
                ThreadState::Yielded => return RunOutcome::AllYielded,
                ThreadState::Halted => return RunOutcome::AllHalted,
                ThreadState::Trapped(trap) => return RunOutcome::Trapped(id, trap),
                _ => {}
            }
            if self.cycle >= deadline {
                return RunOutcome::CycleBudgetExhausted;
            }
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run_program(src: &str) -> Core {
        let prog = assemble(src).unwrap();
        let mut core = Core::new(CoreConfig::default());
        core.add_thread(&prog, 256);
        let out = core.run_until_all_blocked(1_000_000);
        assert_eq!(out, RunOutcome::AllHalted, "program did not halt");
        core
    }

    #[test]
    fn arithmetic_program() {
        let core = run_program(
            r#"
            addi r1, r0, 6
            addi r2, r0, 7
            mul  r3, r1, r2
            halt
            "#,
        );
        assert_eq!(core.thread(ThreadId(0)).regs[3], 42);
    }

    #[test]
    fn state_digest_reflects_architectural_state_only() {
        let a = run_program("addi r1, r0, 6\nhalt\n");
        let b = run_program("addi r1, r0, 6\nhalt\n");
        assert_eq!(
            a.thread(ThreadId(0)).state_digest(),
            b.thread(ThreadId(0)).state_digest()
        );
        let c = run_program("addi r1, r0, 7\nhalt\n");
        assert_ne!(
            a.thread(ThreadId(0)).state_digest(),
            c.thread(ThreadId(0)).state_digest()
        );
        // micro-architectural divergence (counters) must not affect it
        let mut d = run_program("addi r1, r0, 6\nhalt\n");
        let t = d.thread_mut(ThreadId(0));
        t.counters = ThreadCounters::default();
        assert_eq!(
            a.thread(ThreadId(0)).state_digest(),
            d.thread(ThreadId(0)).state_digest()
        );
    }

    #[test]
    fn loop_sums_correctly() {
        let core = run_program(
            r#"
                addi r1, r0, 100
                addi r2, r0, 0
            loop:
                add  r2, r2, r1
                subi r1, r1, 1
                bne  r1, r0, loop
                halt
            "#,
        );
        assert_eq!(core.thread(ThreadId(0)).regs[2], 5050);
    }

    #[test]
    fn memory_roundtrip() {
        let core = run_program(
            r#"
            .data
            buf: .space 4
            .text
                li  r1, 123
                st  r1, buf(r0)
                ld  r2, buf(r0)
                halt
            "#,
        );
        assert_eq!(core.thread(ThreadId(0)).regs[2], 123);
    }

    #[test]
    fn jal_and_jalr_call_return() {
        let core = run_program(
            r#"
                jal  r15, func
                st   r3, 0(r0)
                halt
            func:
                addi r3, r0, 9
                jalr r0, r15, 0
            "#,
        );
        assert_eq!(core.thread(ThreadId(0)).dmem[0], 9);
    }

    #[test]
    fn metrics_export_flushes_counters() {
        let core = run_program(
            r#"
                addi r1, r0, 10
            loop:
                subi r1, r1, 1
                bne  r1, r0, loop
                halt
            "#,
        );
        let mut rec = vds_obs::Recorder::new();
        core.export_metrics(&mut rec);
        let reg = rec.registry();
        assert_eq!(reg.counter("smt.cycles"), core.cycles());
        assert_eq!(
            reg.counter("smt.thread0.retired"),
            core.thread(ThreadId(0)).counters.retired
        );
        assert!(reg.counter("smt.thread0.branches") >= 10);
        assert!(reg.gauge_value("smt.thread0.ipc").unwrap() > 0.0);
        assert_eq!(
            reg.counter("smt.icache.hits") + reg.counter("smt.icache.misses"),
            core.icache_stats().accesses()
        );
    }

    #[test]
    fn pipeline_windows_are_recorded_and_exported() {
        let prog = assemble("addi r1, r0, 1\nyield\naddi r1, r1, 1\nhalt\n").unwrap();
        let mut core = Core::new(CoreConfig::default());
        core.set_window_recording(true);
        let t = core.add_thread(&prog, 16);
        core.run_until_all_blocked(1000);
        core.step(); // parked cycle closes the yield window
        core.resume(t);
        core.run_until_all_blocked(1000);
        let mut rec = vds_obs::Recorder::new();
        core.export_spans(&mut rec);
        assert!(rec.spans().len() >= 2, "spans: {}", rec.spans().len());
        let total_retired: u64 = rec
            .spans()
            .records()
            .flat_map(|s| s.fields.iter())
            .filter(|(k, _)| *k == "retired")
            .map(|(_, v)| match v {
                vds_obs::Value::U64(n) => *n,
                _ => 0,
            })
            .sum();
        assert_eq!(total_retired, core.thread(t).counters.retired);
        for s in rec.spans().records() {
            assert!(s.end >= s.begin);
            assert_eq!(s.component, "smt");
        }
    }

    #[test]
    fn yield_parks_and_resume_continues() {
        let prog = assemble("addi r1, r0, 1\nyield\naddi r1, r1, 1\nhalt\n").unwrap();
        let mut core = Core::new(CoreConfig::default());
        let t = core.add_thread(&prog, 16);
        assert_eq!(core.run_until_all_blocked(1000), RunOutcome::AllYielded);
        assert_eq!(core.thread(t).regs[1], 1);
        core.resume(t);
        assert_eq!(core.run_until_all_blocked(1000), RunOutcome::AllHalted);
        assert_eq!(core.thread(t).regs[1], 2);
    }

    #[test]
    fn access_violation_traps_without_corrupting_others() {
        let bad = assemble("li r1, 9999\nld r2, 0(r1)\nhalt\n").unwrap();
        let good = assemble("addi r1, r0, 5\nst r1, 0(r0)\nhalt\n").unwrap();
        let mut core = Core::new(CoreConfig::default());
        let tb = core.add_thread(&bad, 16);
        let tg = core.add_thread(&good, 16);
        let out = core.run_until_all_blocked(10_000);
        match out {
            RunOutcome::Trapped(id, Trap::AccessViolation { addr }) => {
                assert_eq!(id, tb);
                assert_eq!(addr, 9999);
            }
            other => panic!("expected access violation, got {other:?}"),
        }
        // The good thread's memory is untouched by the bad access.
        let _ = tg;
    }

    #[test]
    fn illegal_instruction_traps() {
        let prog = assemble("nop\nhalt\n").unwrap();
        let mut core = Core::new(CoreConfig::default());
        let t = core.add_thread(&prog, 16);
        core.thread_mut(t).prog.text[0] = 63 << 26;
        match core.run_until_all_blocked(1000) {
            RunOutcome::Trapped(_, Trap::IllegalInstruction { pc }) => assert_eq!(pc, 0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pc_out_of_range_traps() {
        let prog = assemble("jal r0, 100\nhalt\n").unwrap();
        let mut core = Core::new(CoreConfig::default());
        core.add_thread(&prog, 16);
        match core.run_until_all_blocked(1000) {
            RunOutcome::Trapped(_, Trap::PcOutOfRange { pc }) => assert_eq!(pc, 100),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn r0_stays_zero() {
        let core = run_program("addi r0, r0, 42\nhalt\n");
        assert_eq!(core.thread(ThreadId(0)).regs[0], 0);
    }

    #[test]
    fn two_threads_run_concurrently_and_finish_faster_than_serial() {
        let src = r#"
                addi r1, r0, 2000
            loop:
                subi r1, r1, 1
                bne  r1, r0, loop
                halt
        "#;
        let prog = assemble(src).unwrap();

        let mut solo = Core::new(CoreConfig::default());
        solo.add_thread(&prog, 16);
        solo.run_until_all_blocked(10_000_000);
        let t_solo = solo.cycles();

        let mut pair = Core::new(CoreConfig::default());
        pair.add_thread(&prog, 16);
        pair.add_thread(&prog, 16);
        pair.run_until_all_blocked(10_000_000);
        let t_pair = pair.cycles();

        assert!(t_pair < 2 * t_solo, "co-run {t_pair} vs 2×solo {t_solo}");
        assert!(t_pair >= t_solo, "co-run cannot beat a single copy");
        let alpha = t_pair as f64 / (2.0 * t_solo as f64);
        assert!((0.5..=1.0).contains(&alpha), "alpha={alpha}");
    }

    #[test]
    fn mul_occupies_unit_and_stalls_owner() {
        // Two threads that both hammer the single multiplier: heavy
        // contention, alpha near 1.
        let src = r#"
                addi r1, r0, 300
                addi r2, r0, 3
            loop:
                mul  r3, r2, r2
                mul  r4, r3, r2
                subi r1, r1, 1
                bne  r1, r0, loop
                halt
        "#;
        let prog = assemble(src).unwrap();
        let mut solo = Core::new(CoreConfig::default());
        solo.add_thread(&prog, 16);
        solo.run_until_all_blocked(10_000_000);
        let t_solo = solo.cycles();

        let mut pair = Core::new(CoreConfig::default());
        pair.add_thread(&prog, 16);
        pair.add_thread(&prog, 16);
        pair.run_until_all_blocked(10_000_000);
        let alpha = pair.cycles() as f64 / (2.0 * t_solo as f64);
        assert!(alpha > 0.75, "mul-bound pair should contend, alpha={alpha}");
    }

    #[test]
    fn permanent_fu_fault_corrupts_results() {
        let prog = assemble("addi r1, r0, 0\nhalt\n").unwrap();
        let mut core = Core::new(CoreConfig::default());
        let t = core.add_thread(&prog, 16);
        core.inject_fu_fault(FuFault {
            class: FuClass::Alu,
            unit: 0,
            bit: 3,
            value: true,
        });
        core.run_until_all_blocked(1000);
        assert_eq!(core.thread(t).regs[1], 8, "bit 3 stuck at 1");
    }

    #[test]
    fn fault_on_unit_1_spares_single_issue_stream() {
        // With one thread and RoundRobin priority, consecutive dependent
        // ALU ops all land on unit 0; a fault on unit 1 never fires.
        let prog = assemble("addi r1, r0, 1\naddi r1, r1, 1\nhalt\n").unwrap();
        let mut core = Core::new(CoreConfig::default());
        let t = core.add_thread(&prog, 16);
        core.inject_fu_fault(FuFault {
            class: FuClass::Alu,
            unit: 1,
            bit: 7,
            value: true,
        });
        core.run_until_all_blocked(1000);
        assert_eq!(core.thread(t).regs[1], 2);
    }

    #[test]
    fn counters_accumulate() {
        let core = run_program(
            r#"
                addi r1, r0, 10
            loop:
                subi r1, r1, 1
                bne  r1, r0, loop
                halt
            "#,
        );
        let c = core.thread(ThreadId(0)).counters;
        assert_eq!(c.retired, 1 + 20 + 1);
        assert_eq!(c.branches, 10);
        assert!(c.cycles >= c.retired);
        assert!(c.ipc() > 0.0 && c.ipc() <= 1.0);
    }

    #[test]
    fn swap_context_roundtrip() {
        let p1 = assemble("addi r1, r0, 1\nyield\naddi r1, r1, 10\nhalt\n").unwrap();
        let p2 = assemble("addi r2, r0, 2\nhalt\n").unwrap();
        let mut core = Core::new(CoreConfig::default());
        let t = core.add_thread(&p1, 16);
        core.run_until_all_blocked(1000); // p1 yields
        let saved1 = SavedContext {
            regs: [0; 16],
            pc: 0,
            prog: p2,
            dmem: vec![0; 16],
            state: ThreadState::Ready,
        };
        let saved_p1 = core.swap_context(t, saved1);
        assert_eq!(saved_p1.regs[1], 1);
        core.run_until_all_blocked(1000); // p2 halts
        assert_eq!(core.thread(t).regs[2], 2);
        // switch back and finish p1
        let mut back = saved_p1;
        back.state = ThreadState::Ready; // host resumes after yield
        core.swap_context(t, back);
        core.run_until_all_blocked(1000);
        assert_eq!(core.thread(t).regs[1], 11);
    }

    #[test]
    fn deterministic_across_runs() {
        let src = r#"
                addi r1, r0, 500
            loop:
                mul r2, r1, r1
                st  r2, 0(r0)
                ld  r3, 0(r0)
                subi r1, r1, 1
                bne r1, r0, loop
                halt
        "#;
        let prog = assemble(src).unwrap();
        let run = || {
            let mut core = Core::new(CoreConfig::default());
            core.add_thread(&prog, 64);
            core.add_thread(&prog, 64);
            core.run_until_all_blocked(10_000_000);
            (core.cycles(), core.thread(ThreadId(0)).regs[2])
        };
        assert_eq!(run(), run());
    }
}
