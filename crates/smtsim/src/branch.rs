//! Branch predictors.
//!
//! Prediction affects timing only (a mispredict costs a fixed flush
//! penalty); correctness never depends on it. Each hardware thread gets a
//! private predictor — the paper's §5 analogy between branch prediction
//! and *fault* prediction is implemented over in `vds-predictor`, reusing
//! the same two-level ideas.

/// Predictor selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// Always predict taken.
    StaticTaken,
    /// Always predict not-taken.
    StaticNotTaken,
    /// Per-PC 2-bit saturating counters.
    Bimodal {
        /// log2 of the table size.
        bits: u32,
    },
    /// Global-history XOR PC indexing into 2-bit counters.
    Gshare {
        /// log2 of the table size and history length.
        bits: u32,
    },
}

impl Default for PredictorKind {
    fn default() -> Self {
        PredictorKind::Bimodal { bits: 10 }
    }
}

/// A branch predictor instance.
#[derive(Debug, Clone)]
pub enum Predictor {
    /// See [`PredictorKind::StaticTaken`].
    StaticTaken,
    /// See [`PredictorKind::StaticNotTaken`].
    StaticNotTaken,
    /// See [`PredictorKind::Bimodal`].
    Bimodal {
        /// 2-bit counters, one per table slot.
        table: Vec<u8>,
    },
    /// See [`PredictorKind::Gshare`].
    Gshare {
        /// 2-bit counters.
        table: Vec<u8>,
        /// Global history register (low `bits` bits used).
        history: u32,
    },
}

impl Predictor {
    /// Instantiate a predictor of the given kind.
    pub fn new(kind: PredictorKind) -> Self {
        match kind {
            PredictorKind::StaticTaken => Predictor::StaticTaken,
            PredictorKind::StaticNotTaken => Predictor::StaticNotTaken,
            PredictorKind::Bimodal { bits } => Predictor::Bimodal {
                table: vec![1; 1 << bits], // weakly not-taken
            },
            PredictorKind::Gshare { bits } => Predictor::Gshare {
                table: vec![1; 1 << bits],
                history: 0,
            },
        }
    }

    /// Predict whether the branch at instruction index `pc` is taken.
    pub fn predict(&self, pc: u32) -> bool {
        match self {
            Predictor::StaticTaken => true,
            Predictor::StaticNotTaken => false,
            Predictor::Bimodal { table } => table[pc as usize & (table.len() - 1)] >= 2,
            Predictor::Gshare { table, history } => {
                let idx = (pc ^ history) as usize & (table.len() - 1);
                table[idx] >= 2
            }
        }
    }

    /// Update with the actual outcome; returns `true` if the prediction
    /// was correct.
    pub fn update(&mut self, pc: u32, taken: bool) -> bool {
        let predicted = self.predict(pc);
        match self {
            Predictor::StaticTaken | Predictor::StaticNotTaken => {}
            Predictor::Bimodal { table } => {
                let idx = pc as usize & (table.len() - 1);
                table[idx] = bump(table[idx], taken);
            }
            Predictor::Gshare { table, history } => {
                let mask = (table.len() - 1) as u32;
                let idx = ((pc ^ *history) & mask) as usize;
                table[idx] = bump(table[idx], taken);
                *history = ((*history << 1) | u32::from(taken)) & mask;
            }
        }
        predicted == taken
    }
}

#[inline]
fn bump(counter: u8, taken: bool) -> u8 {
    if taken {
        (counter + 1).min(3)
    } else {
        counter.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_predictors() {
        let mut t = Predictor::new(PredictorKind::StaticTaken);
        assert!(t.predict(0));
        assert!(t.update(0, true));
        assert!(!t.update(0, false));
        let n = Predictor::new(PredictorKind::StaticNotTaken);
        assert!(!n.predict(0));
    }

    #[test]
    fn bimodal_learns_a_bias() {
        let mut p = Predictor::new(PredictorKind::Bimodal { bits: 4 });
        for _ in 0..4 {
            p.update(5, true);
        }
        assert!(p.predict(5));
        // saturation: two not-taken flips it back past the hysteresis
        p.update(5, false);
        assert!(p.predict(5), "2-bit hysteresis survives one miss");
        p.update(5, false);
        p.update(5, false);
        assert!(!p.predict(5));
    }

    #[test]
    fn bimodal_slots_are_independent_modulo_aliasing() {
        let mut p = Predictor::new(PredictorKind::Bimodal { bits: 4 });
        for _ in 0..4 {
            p.update(1, true);
            p.update(2, false);
        }
        assert!(p.predict(1));
        assert!(!p.predict(2));
        // aliasing: pc 1 and 17 share a slot in a 16-entry table
        assert_eq!(p.predict(17), p.predict(1));
    }

    #[test]
    fn gshare_learns_alternation_that_bimodal_cannot() {
        // A strictly alternating branch: bimodal hovers at ~50%, gshare
        // keys on history and converges to ~100% after warm-up.
        let run = |mut p: Predictor| -> usize {
            let mut correct = 0;
            for k in 0..400u32 {
                let taken = k % 2 == 0;
                // warm-up: only count the second half
                if p.update(7, taken) && k >= 200 {
                    correct += 1;
                }
            }
            correct
        };
        let g = run(Predictor::new(PredictorKind::Gshare { bits: 6 }));
        let b = run(Predictor::new(PredictorKind::Bimodal { bits: 6 }));
        assert!(g >= 195, "gshare should nail alternation, got {g}/200");
        assert!(b <= 150, "bimodal cannot learn alternation, got {b}/200");
    }

    #[test]
    fn loop_branch_accuracy() {
        // back-edge taken 9 times, then falls through, repeatedly
        let mut p = Predictor::new(PredictorKind::Bimodal { bits: 6 });
        let mut correct = 0;
        let mut total = 0;
        for _ in 0..50 {
            for it in 0..10 {
                let taken = it != 9;
                if p.update(3, taken) {
                    correct += 1;
                }
                total += 1;
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.85, "loop accuracy {acc}");
    }
}
