//! Binary instruction encoding.
//!
//! Instructions live in instruction memory as 32-bit words so that fault
//! injection can flip bits in *encoded* programs and diversity transforms
//! can operate on a concrete representation. Layout (bit 31 = MSB):
//!
//! ```text
//! [31:26] opcode
//! register forms   : [25:22] rd   [21:18] rs1  [17:14] rs2  [13:0] zero
//! immediate forms  : [25:22] rd   [21:18] rs1  [17:16] zero [15:0] imm16
//!   (st uses the rd slot for rs2; andi/ori/xori zero-extend, the rest
//!    sign-extend)
//! lui              : [25:22] rd   [21:16] zero [15:0] imm16
//! branches         : [25:22] zero [21:18] rs1  [17:14] rs2  [13:0] target14
//! jal              : [25:22] rd   [21:0] target22
//! ```
//!
//! Decoding is total over opcodes 0–31 except where reserved; undefined
//! opcodes or malformed fields yield [`DecodeError`], which the core turns
//! into an illegal-instruction trap (a *detected* fault).

use crate::isa::{AluImmOp, AluOp, BranchCond, Instr, MulOp, Reg, IMM_MAX, IMM_MIN, UIMM_MAX};

/// Why a word failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode is not assigned.
    BadOpcode(u8),
    /// A field that the instruction format does not use is non-zero.
    /// Treated as an illegal instruction so that bit flips in unused
    /// fields are *detected* rather than silently ignored.
    BadField,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "undefined opcode {op}"),
            DecodeError::BadField => write!(f, "non-zero bits in unused field"),
        }
    }
}

impl std::error::Error for DecodeError {}

const OP_NOP: u8 = 0;
const OP_ALU_BASE: u8 = 1; // 1..=10
const OP_ALUIMM_BASE: u8 = 11; // 11..=17
const OP_LUI: u8 = 18;
const OP_MUL_BASE: u8 = 19; // 19..=21
const OP_LD: u8 = 22;
const OP_ST: u8 = 23;
const OP_BR_BASE: u8 = 24; // 24..=27 (Eq, Ne, Lt, Ge)
const OP_JAL: u8 = 28;
const OP_JALR: u8 = 29;
const OP_YIELD: u8 = 30;
const OP_HALT: u8 = 31;

#[inline]
fn field(word: u32, hi: u32, lo: u32) -> u32 {
    (word >> lo) & ((1 << (hi - lo + 1)) - 1)
}

#[inline]
fn sext16(v: u32) -> i32 {
    ((v as i32) << 16) >> 16
}

fn branch_index(cond: BranchCond) -> u8 {
    match cond {
        BranchCond::Eq => 0,
        BranchCond::Ne => 1,
        BranchCond::Lt => 2,
        BranchCond::Ge => 3,
    }
}

const BRANCH_CONDS: [BranchCond; 4] = [
    BranchCond::Eq,
    BranchCond::Ne,
    BranchCond::Lt,
    BranchCond::Ge,
];

/// Encode an instruction to its 32-bit word.
///
/// # Panics
/// Panics if an immediate or target exceeds its field
/// (the assembler checks ranges before constructing [`Instr`]s).
pub fn encode(i: &Instr) -> u32 {
    fn simm16(v: i32) -> u32 {
        assert!(
            (IMM_MIN..=IMM_MAX).contains(&v),
            "immediate {v} out of signed 16-bit range"
        );
        (v as u32) & 0xFFFF
    }
    fn uimm16(v: i32) -> u32 {
        assert!(
            (0..=UIMM_MAX).contains(&v),
            "immediate {v} out of unsigned 16-bit range"
        );
        v as u32
    }
    fn pack_reg(op: u8, rd: u8, rs1: u8, rs2: u8) -> u32 {
        (u32::from(op) << 26)
            | (u32::from(rd) << 22)
            | (u32::from(rs1) << 18)
            | (u32::from(rs2) << 14)
    }
    fn pack_imm(op: u8, rd: u8, rs1: u8, imm: u32) -> u32 {
        (u32::from(op) << 26) | (u32::from(rd) << 22) | (u32::from(rs1) << 18) | imm
    }
    match *i {
        Instr::Nop => pack_reg(OP_NOP, 0, 0, 0),
        Instr::Alu { op, rd, rs1, rs2 } => {
            let idx = AluOp::ALL.iter().position(|&o| o == op).unwrap() as u8;
            pack_reg(OP_ALU_BASE + idx, rd.0, rs1.0, rs2.0)
        }
        Instr::AluImm { op, rd, rs1, imm } => {
            let idx = AluImmOp::ALL.iter().position(|&o| o == op).unwrap() as u8;
            let enc = if op.zero_extends() {
                uimm16(imm)
            } else {
                simm16(imm)
            };
            pack_imm(OP_ALUIMM_BASE + idx, rd.0, rs1.0, enc)
        }
        Instr::Lui { rd, imm } => pack_imm(OP_LUI, rd.0, 0, u32::from(imm)),
        Instr::Mul { op, rd, rs1, rs2 } => {
            let idx = match op {
                MulOp::Mul => 0,
                MulOp::Div => 1,
                MulOp::Rem => 2,
            };
            pack_reg(OP_MUL_BASE + idx, rd.0, rs1.0, rs2.0)
        }
        Instr::Ld { rd, rs1, imm } => pack_imm(OP_LD, rd.0, rs1.0, simm16(imm)),
        Instr::St { rs2, rs1, imm } => pack_imm(OP_ST, rs2.0, rs1.0, simm16(imm)),
        Instr::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => {
            assert!(
                target <= crate::isa::BRANCH_TARGET_MAX,
                "branch target {target} out of range"
            );
            (u32::from(OP_BR_BASE + branch_index(cond)) << 26)
                | (u32::from(rs1.0) << 18)
                | (u32::from(rs2.0) << 14)
                | target
        }
        Instr::Jal { rd, target } => {
            assert!(target < (1 << 22), "jal target {target} out of range");
            (u32::from(OP_JAL) << 26) | (u32::from(rd.0) << 22) | target
        }
        Instr::Jalr { rd, rs1, imm } => pack_imm(OP_JALR, rd.0, rs1.0, simm16(imm)),
        Instr::Yield => pack_reg(OP_YIELD, 0, 0, 0),
        Instr::Halt => pack_reg(OP_HALT, 0, 0, 0),
    }
}

/// Decode a 32-bit word back into an instruction.
///
/// Strict: a word whose unused fields carry non-zero bits is rejected with
/// [`DecodeError::BadField`] (checked by re-encoding), so every single-bit
/// corruption of a valid instruction either changes its meaning or is
/// detected as illegal.
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let i = decode_lenient(word)?;
    if encode(&i) != word {
        return Err(DecodeError::BadField);
    }
    Ok(i)
}

/// Decode without the strict unused-field check.
pub fn decode_lenient(word: u32) -> Result<Instr, DecodeError> {
    let op = field(word, 31, 26) as u8;
    let rd = Reg(field(word, 25, 22) as u8);
    let rs1 = Reg(field(word, 21, 18) as u8);
    let rs2 = Reg(field(word, 17, 14) as u8);
    let simm = sext16(field(word, 15, 0));
    Ok(match op {
        OP_NOP => Instr::Nop,
        o if (OP_ALU_BASE..OP_ALU_BASE + 10).contains(&o) => Instr::Alu {
            op: AluOp::ALL[(o - OP_ALU_BASE) as usize],
            rd,
            rs1,
            rs2,
        },
        o if (OP_ALUIMM_BASE..OP_ALUIMM_BASE + 7).contains(&o) => {
            let alu_op = AluImmOp::ALL[(o - OP_ALUIMM_BASE) as usize];
            let imm = if alu_op.zero_extends() {
                field(word, 15, 0) as i32
            } else {
                simm
            };
            Instr::AluImm {
                op: alu_op,
                rd,
                rs1,
                imm,
            }
        }
        OP_LUI => Instr::Lui {
            rd,
            imm: field(word, 15, 0) as u16,
        },
        o if (OP_MUL_BASE..OP_MUL_BASE + 3).contains(&o) => Instr::Mul {
            op: [MulOp::Mul, MulOp::Div, MulOp::Rem][(o - OP_MUL_BASE) as usize],
            rd,
            rs1,
            rs2,
        },
        OP_LD => Instr::Ld { rd, rs1, imm: simm },
        OP_ST => Instr::St {
            rs2: rd, // the store's value register lives in the rd slot
            rs1,
            imm: simm,
        },
        o if (OP_BR_BASE..OP_BR_BASE + 4).contains(&o) => Instr::Branch {
            cond: BRANCH_CONDS[(o - OP_BR_BASE) as usize],
            rs1,
            rs2,
            target: field(word, 13, 0),
        },
        OP_JAL => Instr::Jal {
            rd,
            target: field(word, 21, 0),
        },
        OP_JALR => Instr::Jalr { rd, rs1, imm: simm },
        OP_YIELD => Instr::Yield,
        OP_HALT => Instr::Halt,
        other => return Err(DecodeError::BadOpcode(other)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_sample_instrs() -> Vec<Instr> {
        let mut v = vec![
            Instr::Nop,
            Instr::Yield,
            Instr::Halt,
            Instr::Lui {
                rd: Reg(3),
                imm: 0xBEEF,
            },
            Instr::Ld {
                rd: Reg(4),
                rs1: Reg(5),
                imm: -17,
            },
            Instr::St {
                rs2: Reg(6),
                rs1: Reg(7),
                imm: 42,
            },
            Instr::Jal {
                rd: Reg(15),
                target: 123_456,
            },
            Instr::Jalr {
                rd: Reg(1),
                rs1: Reg(2),
                imm: 3,
            },
        ];
        for op in AluOp::ALL {
            v.push(Instr::Alu {
                op,
                rd: Reg(1),
                rs1: Reg(2),
                rs2: Reg(3),
            });
        }
        for op in AluImmOp::ALL {
            let imm = if op.zero_extends() { 0xBEEF } else { -2000 };
            v.push(Instr::AluImm {
                op,
                rd: Reg(9),
                rs1: Reg(10),
                imm,
            });
        }
        for op in [MulOp::Mul, MulOp::Div, MulOp::Rem] {
            v.push(Instr::Mul {
                op,
                rd: Reg(11),
                rs1: Reg(12),
                rs2: Reg(13),
            });
        }
        for cond in BRANCH_CONDS {
            v.push(Instr::Branch {
                cond,
                rs1: Reg(14),
                rs2: Reg(15),
                target: 9999,
            });
        }
        v
    }

    #[test]
    fn roundtrip_every_instruction_form() {
        for i in all_sample_instrs() {
            let w = encode(&i);
            let back = decode(w).unwrap_or_else(|e| panic!("{i:?}: {e}"));
            assert_eq!(back, i, "word {w:#010x}");
        }
    }

    #[test]
    fn immediate_extremes_roundtrip() {
        for imm in [IMM_MIN, IMM_MAX, 0, -1, 1] {
            let i = Instr::AluImm {
                op: AluImmOp::Addi,
                rd: Reg(1),
                rs1: Reg(2),
                imm,
            };
            assert_eq!(decode(encode(&i)).unwrap(), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of signed 16-bit range")]
    fn oversized_immediate_rejected() {
        encode(&Instr::AluImm {
            op: AluImmOp::Addi,
            rd: Reg(1),
            rs1: Reg(2),
            imm: 1 << 15,
        });
    }

    #[test]
    #[should_panic(expected = "out of unsigned 16-bit range")]
    fn negative_logical_immediate_rejected() {
        encode(&Instr::AluImm {
            op: AluImmOp::Ori,
            rd: Reg(1),
            rs1: Reg(2),
            imm: -1,
        });
    }

    #[test]
    fn logical_immediates_zero_extend() {
        let i = Instr::AluImm {
            op: AluImmOp::Ori,
            rd: Reg(1),
            rs1: Reg(2),
            imm: 0xFFFF,
        };
        assert_eq!(decode(encode(&i)).unwrap(), i);
    }

    #[test]
    fn opcode_space_has_no_collisions() {
        use std::collections::HashSet;
        let ops: HashSet<u32> = all_sample_instrs()
            .iter()
            .map(|i| encode(i) >> 26)
            .collect();
        // nop, 10 alu, 7 aluimm, lui, 3 mul, ld, st, 4 br, jal, jalr,
        // yield, halt = 32 distinct opcodes in samples minus duplicates
        assert_eq!(ops.len(), 32);
    }

    #[test]
    fn undefined_opcodes_report_cleanly() {
        // All 6-bit opcodes are currently assigned (0..=31 fits in 5 of
        // the 6 bits); opcode 32+ must fail.
        let word = 33u32 << 26;
        assert_eq!(decode(word), Err(DecodeError::BadOpcode(33)));
    }

    #[test]
    fn strict_decode_rejects_stray_bits() {
        // A nop with a stray rd bit must not decode as a clean nop.
        let w = encode(&Instr::Nop) | (1 << 22);
        assert_eq!(decode(w), Err(DecodeError::BadField));
        // The lenient decoder accepts it.
        assert_eq!(decode_lenient(w), Ok(Instr::Nop));
    }

    #[test]
    fn bitflip_changes_decoding_or_errors() {
        // Flipping any single bit of an encoded instruction must either
        // produce a *different* valid instruction or a decode error —
        // never silently the same instruction. (Fault-injection relies on
        // this.)
        for i in all_sample_instrs() {
            let w = encode(&i);
            for bit in 0..32 {
                let fw = w ^ (1 << bit);
                if let Ok(other) = decode(fw) {
                    assert_ne!(other, i, "bit {bit} of {i:?} had no effect");
                }
            }
        }
    }
}
