//! Executable program images.
//!
//! A [`Program`] is what the assembler produces and a hardware thread
//! executes: encoded instruction words plus an initial data-memory image
//! and a symbol table. Keeping instructions *encoded* means fault
//! injection and diversity transforms work on the same representation the
//! machine fetches.

use crate::encode::{decode, encode, DecodeError};
use crate::isa::Instr;
use std::collections::BTreeMap;

/// An assembled program image.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Encoded instruction memory (one `u32` word per instruction).
    pub text: Vec<u32>,
    /// Initial data-memory contents, starting at data address 0.
    pub data: Vec<u32>,
    /// Label → instruction index (text labels) or data word index (data
    /// labels are prefixed with nothing; the assembler keeps them in the
    /// same namespace and records which section they were defined in).
    pub symbols: BTreeMap<String, Symbol>,
    /// Entry point (instruction index), usually 0.
    pub entry: u32,
}

/// A named location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    /// Instruction index in `.text`.
    Text(u32),
    /// Word address in `.data`.
    Data(u32),
}

impl Symbol {
    /// The numeric value used when the symbol appears as an operand.
    pub fn value(self) -> u32 {
        match self {
            Symbol::Text(v) | Symbol::Data(v) => v,
        }
    }
}

impl Program {
    /// Build directly from decoded instructions (no data section).
    pub fn from_instrs(instrs: &[Instr]) -> Program {
        Program {
            text: instrs.iter().map(encode).collect(),
            ..Program::default()
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// `true` if the text section is empty.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Decode instruction `idx` (strict decoding).
    pub fn instr(&self, idx: usize) -> Result<Instr, DecodeError> {
        decode(self.text[idx])
    }

    /// Decode the whole text section; fails on the first corrupt word.
    pub fn decode_all(&self) -> Result<Vec<Instr>, (usize, DecodeError)> {
        self.text
            .iter()
            .enumerate()
            .map(|(i, &w)| decode(w).map_err(|e| (i, e)))
            .collect()
    }

    /// Look up a symbol's value.
    pub fn symbol(&self, name: &str) -> Option<Symbol> {
        self.symbols.get(name).copied()
    }

    /// Replace instruction `idx` (used by diversity transforms).
    pub fn set_instr(&mut self, idx: usize, i: &Instr) {
        self.text[idx] = encode(i);
    }

    /// 64-bit FNV-1a digest of the text section — used to tell diverse
    /// versions apart and to detect program-memory corruption.
    pub fn text_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in &self.text {
            for b in w.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AluImmOp, Reg};

    fn addi(rd: u8, rs1: u8, imm: i32) -> Instr {
        Instr::AluImm {
            op: AluImmOp::Addi,
            rd: Reg(rd),
            rs1: Reg(rs1),
            imm,
        }
    }

    #[test]
    fn from_instrs_roundtrips() {
        let prog = Program::from_instrs(&[addi(1, 0, 5), Instr::Halt]);
        assert_eq!(prog.len(), 2);
        assert_eq!(prog.instr(0).unwrap(), addi(1, 0, 5));
        assert_eq!(prog.instr(1).unwrap(), Instr::Halt);
        assert_eq!(prog.decode_all().unwrap().len(), 2);
    }

    #[test]
    fn set_instr_changes_digest() {
        let mut prog = Program::from_instrs(&[addi(1, 0, 5), Instr::Halt]);
        let d0 = prog.text_digest();
        prog.set_instr(0, &addi(1, 0, 6));
        assert_ne!(prog.text_digest(), d0);
    }

    #[test]
    fn corrupt_word_detected() {
        let mut prog = Program::from_instrs(&[addi(1, 0, 5)]);
        prog.text[0] = 0xFFFF_FFFF; // opcode 63: undefined
        assert!(prog.instr(0).is_err());
        assert_eq!(prog.decode_all().unwrap_err().0, 0);
    }

    #[test]
    fn symbols() {
        let mut prog = Program::from_instrs(&[Instr::Halt]);
        prog.symbols.insert("start".into(), Symbol::Text(0));
        prog.symbols.insert("buf".into(), Symbol::Data(16));
        assert_eq!(prog.symbol("start"), Some(Symbol::Text(0)));
        assert_eq!(prog.symbol("buf").unwrap().value(), 16);
        assert_eq!(prog.symbol("nope"), None);
    }
}
