#![warn(missing_docs)]

//! # vds-smtsim — a cycle-level simultaneous multithreaded processor model
//!
//! The paper assumes a 2-way SMT ("hyperthreaded") processor whose
//! two-thread co-run stretch factor is `α ∈ (½, 1]` (≈ 0.65 reported for
//! the Pentium 4). This crate supplies that machine so α can be *measured*
//! rather than assumed: a small in-order superscalar core with
//!
//! * a tiny 32-bit RISC ISA ([`isa`]) with a binary encoding ([`encode`]),
//!   a two-pass assembler ([`asm`]) and a disassembler ([`disasm`]);
//! * 1–8 hardware thread contexts with private register files and
//!   **separate, protected address spaces** (out-of-bounds accesses trap —
//!   the paper's system model requires access violations to be signalled
//!   as faults without corrupting other versions);
//! * shared functional units (ALUs, one multiplier, one load/store unit,
//!   one branch unit) and a shared issue width — the sources of SMT
//!   contention;
//! * shared set-associative I/D caches ([`cache`]) and per-thread branch
//!   predictors ([`branch`]);
//! * per-thread performance counters ([`perf`]);
//! * a library of workload kernels ([`kernels`]) spanning compute-bound to
//!   memory-bound behaviour, and the α-measurement harness ([`alpha`]).
//!
//! The pipeline model ([`core`]) is deliberately simple — in-order, one
//! instruction issued per thread per cycle, blocking loads — because the
//! analytical model only needs a machine whose co-run time is
//! `2αt` with a workload-dependent α in the right range; see DESIGN.md.
//!
//! The [`Yield`](isa::Instr::Yield) instruction marks **round boundaries**:
//! the VDS engine runs a version until it yields, then compares
//! architectural state digests.
//!
//! ## Quick start
//!
//! ```
//! use vds_smtsim::asm::assemble;
//! use vds_smtsim::core::{Core, CoreConfig, RunOutcome};
//!
//! let prog = assemble(
//!     r#"
//!     .text
//!         addi r1, r0, 10     ; n = 10
//!         addi r2, r0, 0      ; acc = 0
//!     loop:
//!         add  r2, r2, r1
//!         addi r1, r1, -1
//!         bne  r1, r0, loop
//!         halt
//!     "#,
//! )
//! .unwrap();
//!
//! let mut core = Core::new(CoreConfig::default());
//! let tid = core.add_thread(&prog, 1024);
//! let outcome = core.run_until_all_blocked(100_000);
//! assert_eq!(outcome, RunOutcome::AllHalted);
//! assert_eq!(core.thread(tid).regs[2], 55); // 10+9+…+1
//! ```

pub mod alpha;
pub mod asm;
pub mod branch;
pub mod cache;
pub mod core;
pub mod disasm;
pub mod encode;
pub mod isa;
pub mod kernels;
pub mod perf;
pub mod program;

pub use crate::core::{Core, CoreConfig, RunOutcome, ThreadId};
pub use crate::isa::{Instr, Reg};
pub use crate::program::Program;
