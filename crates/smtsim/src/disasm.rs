//! Disassembler — renders instructions back to the assembler's dialect.
//!
//! Used by trace output, by diversity-transform debugging, and as the
//! round-trip oracle in property tests (`assemble(disassemble(p)) == p`).

use crate::encode::decode;
use crate::isa::Instr;
use crate::program::Program;
use std::fmt::Write as _;

/// Render one instruction.
pub fn disassemble_instr(i: &Instr) -> String {
    match *i {
        Instr::Alu { op, rd, rs1, rs2 } => {
            format!("{} {rd}, {rs1}, {rs2}", op.mnemonic())
        }
        Instr::AluImm { op, rd, rs1, imm } => {
            format!("{} {rd}, {rs1}, {imm}", op.mnemonic())
        }
        Instr::Lui { rd, imm } => format!("lui {rd}, {imm:#x}"),
        Instr::Mul { op, rd, rs1, rs2 } => {
            format!("{} {rd}, {rs1}, {rs2}", op.mnemonic())
        }
        Instr::Ld { rd, rs1, imm } => format!("ld {rd}, {imm}({rs1})"),
        Instr::St { rs2, rs1, imm } => format!("st {rs2}, {imm}({rs1})"),
        Instr::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => format!("{} {rs1}, {rs2}, {target}", cond.mnemonic()),
        Instr::Jal { rd, target } => format!("jal {rd}, {target}"),
        Instr::Jalr { rd, rs1, imm } => format!("jalr {rd}, {rs1}, {imm}"),
        Instr::Yield => "yield".to_string(),
        Instr::Halt => "halt".to_string(),
        Instr::Nop => "nop".to_string(),
    }
}

/// Render a whole program's text section, one instruction per line,
/// prefixed with its index; undecodable words are shown as `.word`.
pub fn disassemble(prog: &Program) -> String {
    let mut out = String::new();
    for (idx, &w) in prog.text.iter().enumerate() {
        match decode(w) {
            Ok(i) => {
                let _ = writeln!(out, "{idx:5}: {}", disassemble_instr(&i));
            }
            Err(e) => {
                let _ = writeln!(out, "{idx:5}: .word {w:#010x} ; {e}");
            }
        }
    }
    out
}

/// Render without indices, in a form [`crate::asm::assemble`] accepts
/// (numeric branch/jump targets are valid operands).
pub fn to_source(prog: &Program) -> String {
    let mut out = String::new();
    for &w in &prog.text {
        match decode(w) {
            Ok(i) => {
                let _ = writeln!(out, "    {}", disassemble_instr(&i));
            }
            Err(_) => {
                // no assembler syntax for raw words in .text; emit nop to
                // keep addresses aligned (callers that need exactness
                // should check decode_all first)
                let _ = writeln!(out, "    nop ; undecodable {w:#010x}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn simple_rendering() {
        let p = assemble("add r1, r2, r3\nld r4, -2(r5)\nbeq r1, r0, 0\nhalt\n").unwrap();
        let d = disassemble(&p);
        assert!(d.contains("add r1, r2, r3"));
        assert!(d.contains("ld r4, -2(r5)"));
        assert!(d.contains("beq r1, r0, 0"));
        assert!(d.contains("halt"));
    }

    #[test]
    fn roundtrip_through_source() {
        let src = r#"
            .text
            start:
                addi r1, r0, 5
            loop:
                mul  r2, r1, r1
                subi r1, r1, 1
                bne  r1, r0, loop
                st   r2, 3(r0)
                yield
                halt
        "#;
        let p1 = assemble(src).unwrap();
        let p2 = assemble(&to_source(&p1)).unwrap();
        assert_eq!(p1.text, p2.text, "reassembled text must be identical");
    }

    #[test]
    fn undecodable_word_shown() {
        let mut p = assemble("nop\n").unwrap();
        p.text[0] = 63 << 26;
        assert!(disassemble(&p).contains(".word"));
    }
}
