//! Set-associative cache model with LRU replacement.
//!
//! Caches are **shared between hardware threads** — exactly the resource
//! the paper's α abstracts over: co-scheduled versions evict each other's
//! lines (raising α) while memory-stall cycles of one thread can be hidden
//! by the other (lowering α). Tags carry the owning thread id because the
//! VDS system model mandates separate address spaces; two threads' equal
//! addresses are *different* memory.
//!
//! The model is timing-only: hit or miss, with the data held in the
//! thread's address space. Line size is in words; a miss costs the
//! configured memory latency.

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in 32-bit words (power of two).
    pub line_words: usize,
}

impl CacheConfig {
    /// A small default: 64 sets × 2 ways × 4-word lines = 2 KiB (512
    /// words) — deliberately modest so that realistic kernels contend.
    pub fn small() -> Self {
        CacheConfig {
            sets: 64,
            ways: 2,
            line_words: 4,
        }
    }

    /// A tiny cache for stress-testing conflict behaviour.
    pub fn tiny() -> Self {
        CacheConfig {
            sets: 8,
            ways: 1,
            line_words: 4,
        }
    }

    /// Capacity in words.
    pub fn capacity_words(&self) -> usize {
        self.sets * self.ways * self.line_words
    }

    fn validate(&self) {
        assert!(self.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            self.line_words.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.ways >= 1, "need at least one way");
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    /// `(thread, tag)` — thread id participates in the tag because
    /// address spaces are disjoint.
    key: (u8, u32),
    /// LRU stamp; larger = more recent.
    stamp: u64,
}

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Misses caused by a *different* thread having evicted the line
    /// (inter-thread conflict; only counted when the line was previously
    /// present for this thread).
    pub thread_conflicts: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in [0, 1]; 1 for an untouched cache.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

/// A shared, timing-only, set-associative LRU cache.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Option<Line>>>,
    clock: u64,
    stats: CacheStats,
    /// Evictions recorded per (set, evicting-thread ≠ owner) to attribute
    /// conflict misses. Maps evicted key → evictor thread; bounded by
    /// capacity.
    evicted_by_other: Vec<(u8, u32)>,
}

impl Cache {
    /// Build an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate();
        Cache {
            cfg,
            sets: vec![vec![None; cfg.ways]; cfg.sets],
            clock: 0,
            stats: CacheStats::default(),
            evicted_by_other: Vec::new(),
        }
    }

    /// Geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidate everything (e.g. at a simulated context switch if the
    /// host wants cold-cache semantics).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for way in set.iter_mut() {
                *way = None;
            }
        }
        self.evicted_by_other.clear();
    }

    #[inline]
    fn index_tag(&self, addr: u32) -> (usize, u32) {
        let line = addr as usize / self.cfg.line_words;
        (line % self.cfg.sets, (line / self.cfg.sets) as u32)
    }

    /// Access `addr` (word address) on behalf of `thread`. Returns `true`
    /// on hit. A miss allocates the line (for stores too: write-allocate).
    pub fn access(&mut self, thread: u8, addr: u32) -> bool {
        self.clock += 1;
        let (set_idx, tag) = self.index_tag(addr);
        let key = (thread, tag);
        let set = &mut self.sets[set_idx];

        if let Some(line) = set.iter_mut().flatten().find(|l| l.key == key) {
            line.stamp = self.clock;
            self.stats.hits += 1;
            return true;
        }

        self.stats.misses += 1;
        if let Some(pos) = self.evicted_by_other.iter().position(|&k| k == key) {
            self.stats.thread_conflicts += 1;
            self.evicted_by_other.swap_remove(pos);
        }

        // choose victim: empty way or LRU
        let victim = match set.iter().position(Option::is_none) {
            Some(i) => i,
            None => {
                let (i, _) = set
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.as_ref().map_or(0, |l| l.stamp))
                    .expect("non-empty set");
                i
            }
        };
        if let Some(old) = set[victim] {
            if old.key.0 != thread {
                // remember cross-thread eviction so a re-miss by the owner
                // counts as an inter-thread conflict
                if self.evicted_by_other.len() < self.cfg.capacity_words() {
                    self.evicted_by_other.push(old.key);
                }
            }
        }
        set[victim] = Some(Line {
            key,
            stamp: self.clock,
        });
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = Cache::new(CacheConfig::small());
        assert!(!c.access(0, 100));
        assert!(c.access(0, 100));
        assert!(c.access(0, 101), "same line (4-word lines)");
        assert!(!c.access(0, 104), "next line");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn threads_do_not_share_lines() {
        let mut c = Cache::new(CacheConfig::small());
        c.access(0, 100);
        assert!(
            !c.access(1, 100),
            "same address, different thread: separate address spaces"
        );
    }

    #[test]
    fn lru_eviction_within_a_set() {
        // tiny: 8 sets, direct-mapped, 4-word lines. Two addresses that
        // map to the same set: stride = sets * line_words = 32 words.
        let mut c = Cache::new(CacheConfig::tiny());
        assert!(!c.access(0, 0));
        assert!(!c.access(0, 32), "conflicting line evicts");
        assert!(!c.access(0, 0), "original line was evicted");
    }

    #[test]
    fn two_way_set_holds_two_conflicting_lines() {
        let cfg = CacheConfig {
            sets: 8,
            ways: 2,
            line_words: 4,
        };
        let mut c = Cache::new(cfg);
        c.access(0, 0);
        c.access(0, 32);
        assert!(c.access(0, 0));
        assert!(c.access(0, 32));
        // a third conflicting line evicts the LRU (addr 0 was touched
        // first in this round... order: 0 hit, 32 hit, so 0 is LRU)
        c.access(0, 64);
        assert!(!c.access(0, 0));
    }

    #[test]
    fn inter_thread_conflicts_are_attributed() {
        let mut c = Cache::new(CacheConfig::tiny());
        c.access(0, 0); // T0 owns line
        c.access(1, 0); // T1's same-set line evicts it (different key)
        c.access(0, 0); // T0 re-misses: inter-thread conflict
        assert_eq!(c.stats().thread_conflicts, 1);
    }

    #[test]
    fn flush_empties() {
        let mut c = Cache::new(CacheConfig::small());
        c.access(0, 0);
        c.flush();
        assert!(!c.access(0, 0));
    }

    #[test]
    fn hit_rate() {
        let mut c = Cache::new(CacheConfig::small());
        assert_eq!(c.stats().hit_rate(), 1.0);
        c.access(0, 0);
        c.access(0, 0);
        c.access(0, 0);
        c.access(0, 0);
        assert_eq!(c.stats().hit_rate(), 0.75);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn geometry_validated() {
        Cache::new(CacheConfig {
            sets: 3,
            ways: 1,
            line_words: 4,
        });
    }
}
