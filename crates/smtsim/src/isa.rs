//! The instruction set.
//!
//! A 32-bit word-addressed RISC with 16 general registers (`r0` hardwired
//! to zero). Rich enough to express realistic kernels (integer arithmetic,
//! memory traffic, branches, calls), small enough that diversity
//! transformations and fault injection can reason about it exhaustively.

use std::fmt;

/// A register name, `r0`–`r15`. `r0` always reads zero; writes to it are
/// discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// The hardwired-zero register.
    pub const ZERO: Reg = Reg(0);
    /// Number of architectural registers.
    pub const COUNT: usize = 16;

    /// Construct, panicking on out-of-range indices.
    pub fn new(i: u8) -> Reg {
        assert!(i < 16, "register index out of range: {i}");
        Reg(i)
    }

    /// Index as usize, for register-file access.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Three-register ALU operations (`rd = rs1 op rs2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Logical shift left (by rs2 mod 32).
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Set if less-than, signed.
    Slt,
    /// Set if less-than, unsigned.
    Sltu,
}

impl AluOp {
    /// All ALU operations, in encoding order.
    pub const ALL: [AluOp; 10] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Sltu,
    ];

    /// Apply the operation.
    #[inline]
    pub fn apply(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Srl => a.wrapping_shr(b & 31),
            AluOp::Sra => (a as i32).wrapping_shr(b & 31) as u32,
            AluOp::Slt => u32::from((a as i32) < (b as i32)),
            AluOp::Sltu => u32::from(a < b),
        }
    }

    /// Mnemonic, as understood by the assembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
        }
    }
}

/// Immediate ALU operations (`rd = rs1 op imm`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluImmOp {
    /// Add immediate (signed).
    Addi,
    /// And immediate.
    Andi,
    /// Or immediate.
    Ori,
    /// Xor immediate.
    Xori,
    /// Shift left immediate.
    Slli,
    /// Logical shift right immediate.
    Srli,
    /// Set if less-than immediate, signed.
    Slti,
}

impl AluImmOp {
    /// All immediate ALU operations, in encoding order.
    pub const ALL: [AluImmOp; 7] = [
        AluImmOp::Addi,
        AluImmOp::Andi,
        AluImmOp::Ori,
        AluImmOp::Xori,
        AluImmOp::Slli,
        AluImmOp::Srli,
        AluImmOp::Slti,
    ];

    /// `true` for the logical forms whose 16-bit immediate is
    /// zero-extended (`andi`/`ori`/`xori`); arithmetic/comparison forms
    /// sign-extend. This mirrors MIPS and makes `li` expressible as
    /// `lui` + `ori`.
    pub fn zero_extends(self) -> bool {
        matches!(self, AluImmOp::Andi | AluImmOp::Ori | AluImmOp::Xori)
    }

    /// Apply the operation. `imm` arrives already extended per
    /// [`Self::zero_extends`] (the decoder takes care of this); shift
    /// amounts are taken mod 32.
    #[inline]
    pub fn apply(self, a: u32, imm: i32) -> u32 {
        match self {
            AluImmOp::Addi => a.wrapping_add(imm as u32),
            AluImmOp::Andi => a & (imm as u32),
            AluImmOp::Ori => a | (imm as u32),
            AluImmOp::Xori => a ^ (imm as u32),
            AluImmOp::Slli => a.wrapping_shl((imm as u32) & 31),
            AluImmOp::Srli => a.wrapping_shr((imm as u32) & 31),
            AluImmOp::Slti => u32::from((a as i32) < imm),
        }
    }

    /// Mnemonic, as understood by the assembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluImmOp::Addi => "addi",
            AluImmOp::Andi => "andi",
            AluImmOp::Ori => "ori",
            AluImmOp::Xori => "xori",
            AluImmOp::Slli => "slli",
            AluImmOp::Srli => "srli",
            AluImmOp::Slti => "slti",
        }
    }
}

/// Multi-cycle multiply/divide operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MulOp {
    /// Low 32 bits of the product.
    Mul,
    /// Signed division (`x / 0 = 0xFFFF_FFFF`, `i32::MIN / -1` wraps).
    Div,
    /// Signed remainder (`x % 0 = x`).
    Rem,
}

impl MulOp {
    /// Apply the operation with the ISA's defined division-by-zero
    /// semantics (no trap — deterministic results keep versions
    /// comparable).
    #[inline]
    pub fn apply(self, a: u32, b: u32) -> u32 {
        match self {
            MulOp::Mul => a.wrapping_mul(b),
            MulOp::Div => {
                if b == 0 {
                    0xFFFF_FFFF
                } else {
                    (a as i32).wrapping_div(b as i32) as u32
                }
            }
            MulOp::Rem => {
                if b == 0 {
                    a
                } else {
                    (a as i32).wrapping_rem(b as i32) as u32
                }
            }
        }
    }

    /// Mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            MulOp::Mul => "mul",
            MulOp::Div => "div",
            MulOp::Rem => "rem",
        }
    }
}

/// Conditional branch comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less-than, signed.
    Lt,
    /// Greater-or-equal, signed.
    Ge,
}

impl BranchCond {
    /// Evaluate the condition.
    #[inline]
    pub fn holds(self, a: u32, b: u32) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i32) < (b as i32),
            BranchCond::Ge => (a as i32) >= (b as i32),
        }
    }

    /// Mnemonic (`beq` etc.).
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
        }
    }

    /// The condition with operands swapped semantics preserved:
    /// `a < b ⇔ !(a >= b)` etc. Used by diversity transformations.
    pub fn negated(self) -> BranchCond {
        match self {
            BranchCond::Eq => BranchCond::Ne,
            BranchCond::Ne => BranchCond::Eq,
            BranchCond::Lt => BranchCond::Ge,
            BranchCond::Ge => BranchCond::Lt,
        }
    }
}

/// One machine instruction.
///
/// Branch/jump targets are **absolute instruction indices** (the assembler
/// resolves labels); `imm` fields are word offsets for memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `rd = rs1 op rs2`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// `rd = rs1 op imm`.
    AluImm {
        /// Operation.
        op: AluImmOp,
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
        /// Immediate, 14-bit signed range.
        imm: i32,
    },
    /// `rd = imm << 16` (load upper immediate).
    Lui {
        /// Destination.
        rd: Reg,
        /// Upper 16 bits.
        imm: u16,
    },
    /// Multi-cycle multiply/divide: `rd = rs1 op rs2`.
    Mul {
        /// Operation.
        op: MulOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// Load word: `rd = mem[rs1 + imm]` (word addressing).
    Ld {
        /// Destination.
        rd: Reg,
        /// Base address register.
        rs1: Reg,
        /// Word offset.
        imm: i32,
    },
    /// Store word: `mem[rs1 + imm] = rs2`.
    St {
        /// Value to store.
        rs2: Reg,
        /// Base address register.
        rs1: Reg,
        /// Word offset.
        imm: i32,
    },
    /// Conditional branch to absolute instruction index `target`.
    Branch {
        /// Comparison.
        cond: BranchCond,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
        /// Absolute target instruction index.
        target: u32,
    },
    /// Jump-and-link to absolute index `target`; `rd = return index`.
    Jal {
        /// Link register (often `r0` to discard).
        rd: Reg,
        /// Absolute target instruction index.
        target: u32,
    },
    /// Indirect jump: to `rs1 + imm`; `rd = return index`.
    Jalr {
        /// Link register.
        rd: Reg,
        /// Target base register.
        rs1: Reg,
        /// Offset in instructions.
        imm: i32,
    },
    /// End of a VDS round: the thread parks until the host resumes it.
    Yield,
    /// Terminate the thread.
    Halt,
    /// No operation.
    Nop,
}

/// Functional-unit classes; the core has a fixed number of units per
/// class, shared by all hardware threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Single-cycle integer ALU.
    Alu,
    /// Multi-cycle multiplier/divider.
    MulDiv,
    /// Load/store unit.
    Mem,
    /// Branch/jump unit.
    Branch,
    /// No unit needed (`nop`, `yield`, `halt`).
    None,
}

impl Instr {
    /// Which functional-unit class executes this instruction.
    pub fn fu_class(&self) -> FuClass {
        match self {
            Instr::Alu { .. } | Instr::AluImm { .. } | Instr::Lui { .. } => FuClass::Alu,
            Instr::Mul { .. } => FuClass::MulDiv,
            Instr::Ld { .. } | Instr::St { .. } => FuClass::Mem,
            Instr::Branch { .. } | Instr::Jal { .. } | Instr::Jalr { .. } => FuClass::Branch,
            Instr::Yield | Instr::Halt | Instr::Nop => FuClass::None,
        }
    }

    /// Occupancy of the functional unit in cycles (`mul` 3, `div`/`rem`
    /// 12, everything else 1). Cache misses add on top for memory ops.
    pub fn fu_latency(&self) -> u32 {
        match self {
            Instr::Mul { op: MulOp::Mul, .. } => 3,
            Instr::Mul { .. } => 12,
            _ => 1,
        }
    }

    /// Destination register, if the instruction writes one.
    pub fn dest(&self) -> Option<Reg> {
        match *self {
            Instr::Alu { rd, .. }
            | Instr::AluImm { rd, .. }
            | Instr::Lui { rd, .. }
            | Instr::Mul { rd, .. }
            | Instr::Ld { rd, .. }
            | Instr::Jal { rd, .. }
            | Instr::Jalr { rd, .. } => {
                if rd == Reg::ZERO {
                    None
                } else {
                    Some(rd)
                }
            }
            _ => None,
        }
    }

    /// Source registers read by the instruction.
    pub fn sources(&self) -> Vec<Reg> {
        match *self {
            Instr::Alu { rs1, rs2, .. } | Instr::Mul { rs1, rs2, .. } => vec![rs1, rs2],
            Instr::AluImm { rs1, .. } | Instr::Ld { rs1, .. } | Instr::Jalr { rs1, .. } => {
                vec![rs1]
            }
            Instr::St { rs1, rs2, .. } | Instr::Branch { rs1, rs2, .. } => vec![rs1, rs2],
            _ => vec![],
        }
    }

    /// `true` for control-flow instructions.
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Instr::Branch { .. } | Instr::Jal { .. } | Instr::Jalr { .. }
        )
    }
}

/// Smallest signed 16-bit immediate (arithmetic forms, loads, stores,
/// `jalr`).
pub const IMM_MIN: i32 = -(1 << 15);
/// Largest signed 16-bit immediate.
pub const IMM_MAX: i32 = (1 << 15) - 1;
/// Largest zero-extended 16-bit immediate (logical forms).
pub const UIMM_MAX: i32 = (1 << 16) - 1;
/// Maximum conditional-branch target (14-bit field → 16 Ki instructions).
pub const BRANCH_TARGET_MAX: u32 = (1 << 14) - 1;
/// Maximum absolute jump target (22-bit field).
pub const TARGET_MAX: u32 = (1 << 22) - 1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_zero_is_special() {
        assert_eq!(Reg::ZERO, Reg(0));
        let i = Instr::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::ZERO,
            rs1: Reg(1),
            imm: 5,
        };
        assert_eq!(i.dest(), None, "writes to r0 are discarded");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_range_checked() {
        Reg::new(16);
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(3, 4), 7);
        assert_eq!(AluOp::Add.apply(u32::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(3, 4), u32::MAX);
        assert_eq!(AluOp::Sll.apply(1, 33), 2, "shift amounts are mod 32");
        assert_eq!(AluOp::Sra.apply(0x8000_0000, 31), u32::MAX);
        assert_eq!(AluOp::Srl.apply(0x8000_0000, 31), 1);
        assert_eq!(AluOp::Slt.apply(u32::MAX, 0), 1, "-1 < 0 signed");
        assert_eq!(AluOp::Sltu.apply(u32::MAX, 0), 0, "max > 0 unsigned");
    }

    #[test]
    fn alu_imm_semantics() {
        assert_eq!(AluImmOp::Addi.apply(10, -3), 7);
        assert_eq!(AluImmOp::Andi.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluImmOp::Slti.apply(5, 6), 1);
        assert_eq!(AluImmOp::Slli.apply(1, 4), 16);
    }

    #[test]
    fn division_by_zero_is_defined() {
        assert_eq!(MulOp::Div.apply(42, 0), 0xFFFF_FFFF);
        assert_eq!(MulOp::Rem.apply(42, 0), 42);
        // i32::MIN / -1 must not panic
        assert_eq!(
            MulOp::Div.apply(i32::MIN as u32, -1i32 as u32),
            i32::MIN as u32
        );
    }

    #[test]
    fn branch_conditions() {
        assert!(BranchCond::Eq.holds(5, 5));
        assert!(BranchCond::Ne.holds(5, 6));
        assert!(BranchCond::Lt.holds(-1i32 as u32, 0));
        assert!(BranchCond::Ge.holds(0, -1i32 as u32));
        for c in [
            BranchCond::Eq,
            BranchCond::Ne,
            BranchCond::Lt,
            BranchCond::Ge,
        ] {
            assert_eq!(c.negated().negated(), c);
            assert_ne!(c.holds(3, 7), c.negated().holds(3, 7));
        }
    }

    #[test]
    fn fu_classes_and_latencies() {
        let add = Instr::Alu {
            op: AluOp::Add,
            rd: Reg(1),
            rs1: Reg(2),
            rs2: Reg(3),
        };
        assert_eq!(add.fu_class(), FuClass::Alu);
        assert_eq!(add.fu_latency(), 1);
        let mul = Instr::Mul {
            op: MulOp::Mul,
            rd: Reg(1),
            rs1: Reg(2),
            rs2: Reg(3),
        };
        assert_eq!(mul.fu_class(), FuClass::MulDiv);
        assert_eq!(mul.fu_latency(), 3);
        let div = Instr::Mul {
            op: MulOp::Div,
            rd: Reg(1),
            rs1: Reg(2),
            rs2: Reg(3),
        };
        assert_eq!(div.fu_latency(), 12);
        assert_eq!(Instr::Yield.fu_class(), FuClass::None);
    }

    #[test]
    fn sources_and_dests() {
        let st = Instr::St {
            rs2: Reg(4),
            rs1: Reg(5),
            imm: 2,
        };
        assert_eq!(st.dest(), None);
        assert_eq!(st.sources(), vec![Reg(5), Reg(4)]);
        let ld = Instr::Ld {
            rd: Reg(4),
            rs1: Reg(5),
            imm: 2,
        };
        assert_eq!(ld.dest(), Some(Reg(4)));
        assert!(Instr::Jal {
            rd: Reg(0),
            target: 7
        }
        .is_control_flow());
    }
}
