//! Workload kernels.
//!
//! The paper's VDS runs application "versions" in rounds; these kernels
//! are the applications. Each kernel is a parameterised assembly program
//! that initialises its inputs, then executes `rounds` computation rounds,
//! ending every round with `yield` and storing a round result word at
//! [`Kernel::out_addr`]. The suite deliberately spans the
//! microarchitectural spectrum:
//!
//! | kernel   | character                      | SMT pressure          |
//! |----------|--------------------------------|-----------------------|
//! | vecsum   | streaming loads, tight loop    | LSU + issue width     |
//! | crc      | multiply-accumulate            | multiplier            |
//! | matmul   | nested loops, mul + loads      | multiplier + D-cache  |
//! | pchase   | dependent loads over a ring    | D-cache misses        |
//! | bsort    | data-dependent branches        | branch unit + flushes |
//! | control  | integer PID loop               | ALU chain             |
//!
//! Every kernel has a pure-Rust **oracle** in [`oracle`] that computes the
//! expected final result; tests pin the simulator against it, so kernels
//! double as end-to-end correctness tests of assembler + core.

use crate::asm::assemble;
use crate::program::Program;

/// A ready-to-run workload.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Short identifier (`"vecsum"` …).
    pub name: String,
    /// Assembly source.
    pub source: String,
    /// Data-memory words the kernel needs.
    pub dmem_words: usize,
    /// Word address where each round stores its result.
    pub out_addr: u32,
    /// Number of rounds the program performs before halting.
    pub rounds: u32,
}

impl Kernel {
    /// Assemble the kernel.
    ///
    /// # Panics
    /// Panics if the generated source fails to assemble (a bug in this
    /// module, covered by tests).
    pub fn program(&self) -> Program {
        assemble(&self.source)
            .unwrap_or_else(|e| panic!("kernel `{}` failed to assemble: {e}", self.name))
    }
}

/// Streaming vector sum over `n` words.
pub fn vecsum(n: u32, rounds: u32) -> Kernel {
    assert!(n >= 1 && rounds >= 1);
    let source = format!(
        r#"
        ; vecsum: X[0..{n}) = 5,8,11,…; each round stores sum+round at {n}
            li   r14, {rounds}
            addi r1, r0, 0
            li   r2, {n}
            addi r3, r0, 5
        init:
            st   r3, 0(r1)
            addi r3, r3, 3
            addi r1, r1, 1
            bne  r1, r2, init
            addi r13, r0, 0      ; round index
        round:
            addi r4, r0, 0
            addi r1, r0, 0
        sum:
            ld   r5, 0(r1)
            add  r4, r4, r5
            addi r1, r1, 1
            bne  r1, r2, sum
            add  r4, r4, r13
            st   r4, {n}(r0)
            addi r13, r13, 1
            subi r14, r14, 1
            yield
            bne  r14, r0, round
            halt
        "#
    );
    Kernel {
        name: "vecsum".into(),
        source,
        dmem_words: n as usize + 1,
        out_addr: n,
        rounds,
    }
}

/// Multiply-accumulate hash (h = h·31 + X\[i\]) over `n` words.
pub fn crc(n: u32, rounds: u32) -> Kernel {
    assert!(n >= 1 && rounds >= 1);
    let source = format!(
        r#"
        ; crc: X[i] = 7i+1; per round h = fold(h*31 + X[i]), h0 = 17+round
            li   r14, {rounds}
            addi r1, r0, 0
            li   r2, {n}
            addi r3, r0, 1
        init:
            st   r3, 0(r1)
            addi r3, r3, 7
            addi r1, r1, 1
            bne  r1, r2, init
            addi r13, r0, 0
            addi r12, r0, 31
        round:
            addi r4, r13, 17     ; h = 17 + round
            addi r1, r0, 0
        acc:
            ld   r5, 0(r1)
            mul  r4, r4, r12
            add  r4, r4, r5
            addi r1, r1, 1
            bne  r1, r2, acc
            st   r4, {n}(r0)
            addi r13, r13, 1
            subi r14, r14, 1
            yield
            bne  r14, r0, round
            halt
        "#
    );
    Kernel {
        name: "crc".into(),
        source,
        dmem_words: n as usize + 1,
        out_addr: n,
        rounds,
    }
}

/// Dense `n×n` integer matrix multiply; memory layout `A | B | C | out`.
pub fn matmul(n: u32, rounds: u32) -> Kernel {
    assert!(n >= 2 && rounds >= 1);
    let nn = n * n;
    let b_base = nn;
    let c_base = 2 * nn;
    let out = 3 * nn;
    let last_c = c_base + nn - 1;
    let source = format!(
        r#"
        ; matmul {n}x{n}: A[i]=i+1, B[i]=2i+3; round bumps A[0] then C=A*B
            li   r14, {rounds}
            addi r1, r0, 0
            li   r2, {nn}
            addi r3, r0, 1       ; A fill
            addi r4, r0, 3       ; B fill
        init:
            st   r3, 0(r1)
            st   r4, {b_base}(r1)
            addi r3, r3, 1
            addi r4, r4, 2
            addi r1, r1, 1
            bne  r1, r2, init
            li   r9, {n}
        round:
            ld   r5, 0(r0)       ; A[0] += 1
            addi r5, r5, 1
            st   r5, 0(r0)
            addi r1, r0, 0       ; i
        iloop:
            addi r2, r0, 0       ; j
        jloop:
            addi r4, r0, 0       ; acc
            addi r3, r0, 0       ; k
        kloop:
            mul  r5, r1, r9
            add  r5, r5, r3      ; A index i*n+k
            ld   r7, 0(r5)
            mul  r6, r3, r9
            add  r6, r6, r2      ; B index k*n+j
            ld   r8, {b_base}(r6)
            mul  r7, r7, r8
            add  r4, r4, r7
            addi r3, r3, 1
            bne  r3, r9, kloop
            mul  r5, r1, r9
            add  r5, r5, r2
            st   r4, {c_base}(r5)
            addi r2, r2, 1
            bne  r2, r9, jloop
            addi r1, r1, 1
            bne  r1, r9, iloop
            ld   r5, {last_c}(r0)
            st   r5, {out}(r0)
            subi r14, r14, 1
            yield
            bne  r14, r0, round
            halt
        "#
    );
    Kernel {
        name: "matmul".into(),
        source,
        dmem_words: out as usize + 1,
        out_addr: out,
        rounds,
    }
}

/// Pointer chase around a ring of `len` nodes, `steps` hops per round.
/// `len` must be coprime with the stride 7 so the ring is a single cycle.
pub fn pchase(len: u32, steps: u32, rounds: u32) -> Kernel {
    assert!(len >= 2 && !len.is_multiple_of(7) && steps >= 1 && rounds >= 1);
    let source = format!(
        r#"
        ; pchase: next[i] = (i+7) mod {len}; walk {steps} hops per round
            li   r14, {rounds}
            addi r1, r0, 0
            li   r2, {len}
        init:
            addi r3, r1, 7
            blt  r3, r2, inrange
            sub  r3, r3, r2
        inrange:
            st   r3, 0(r1)
            addi r1, r1, 1
            bne  r1, r2, init
            addi r13, r0, 0
        round:
            addi r4, r13, 0      ; p = round (mod len guaranteed small)
            blt  r4, r2, pok
            addi r4, r0, 0
        pok:
            li   r5, {steps}
        walk:
            ld   r4, 0(r4)
            subi r5, r5, 1
            bne  r5, r0, walk
            st   r4, {len}(r0)
            addi r13, r13, 1
            subi r14, r14, 1
            yield
            bne  r14, r0, round
            halt
        "#
    );
    Kernel {
        name: "pchase".into(),
        source,
        dmem_words: len as usize + 1,
        out_addr: len,
        rounds,
    }
}

/// Bubble sort of `n` words re-initialised each round; branch-heavy.
pub fn bsort(n: u32, rounds: u32) -> Kernel {
    assert!(n >= 2 && rounds >= 1);
    let mid = n / 2;
    let n1 = n - 1;
    let source = format!(
        r#"
        ; bsort: X[i] = ((37i+11) & 63) ^ round, bubble sort, out = X[{mid}]
            li   r14, {rounds}
            addi r13, r0, 0      ; round
            addi r12, r0, 37
        round:
            addi r1, r0, 0
            li   r2, {n}
        init:
            mul  r3, r1, r12
            addi r3, r3, 11
            andi r3, r3, 63
            xor  r3, r3, r13
            st   r3, 0(r1)
            addi r1, r1, 1
            bne  r1, r2, init
            ; outer i = 0..n-1
            addi r1, r0, 0
            li   r9, {n1}
        outer:
            addi r2, r0, 0       ; j
            sub  r10, r9, r1     ; n-1-i
            beq  r10, r0, onext
        inner:
            ld   r4, 0(r2)
            ld   r5, 1(r2)
            blt  r4, r5, noswap
            beq  r4, r5, noswap
            st   r5, 0(r2)
            st   r4, 1(r2)
        noswap:
            addi r2, r2, 1
            bne  r2, r10, inner
        onext:
            addi r1, r1, 1
            bne  r1, r9, outer
            ld   r4, {mid}(r0)
            st   r4, {n}(r0)
            addi r13, r13, 1
            subi r14, r14, 1
            yield
            bne  r14, r0, round
            halt
        "#
    );
    Kernel {
        name: "bsort".into(),
        source,
        dmem_words: n as usize + 1,
        out_addr: n,
        rounds,
    }
}

/// Integer PID-style control loop: `iters` updates per round.
pub fn control(iters: u32, rounds: u32) -> Kernel {
    assert!(iters >= 1 && rounds >= 1);
    let source = format!(
        r#"
        ; control: y += (3e + I) >> 3, e = target - y, I += e;
        ; target starts at 1000 and grows 50 per round. out word = y.
            li   r14, {rounds}
            li   r11, 1000       ; target
            addi r12, r0, 0      ; y
            addi r13, r0, 0      ; integral
            addi r10, r0, 3
            addi r9,  r0, 3      ; shift amount
        round:
            li   r5, {iters}
        step:
            sub  r4, r11, r12    ; e
            add  r13, r13, r4    ; I += e
            mul  r6, r4, r10
            add  r6, r6, r13
            sra  r6, r6, r9
            add  r12, r12, r6
            subi r5, r5, 1
            bne  r5, r0, step
            st   r12, 0(r0)
            addi r11, r11, 50
            subi r14, r14, 1
            yield
            bne  r14, r0, round
            halt
        "#
    );
    Kernel {
        name: "control".into(),
        source,
        dmem_words: 4,
        out_addr: 0,
        rounds,
    }
}

/// 4-tap FIR filter over `n` samples (multiply-accumulate with a sliding
/// window — DSP-flavoured mixed compute/memory).
pub fn fir(n: u32, rounds: u32) -> Kernel {
    assert!(n >= 8 && rounds >= 1);
    let out_base = n; // outputs y[0..n-4] at addresses n..2n-4
    let out = 2 * n;
    let n4 = n - 4;
    let source = format!(
        r#"
        ; fir: x[i] = (5i+3) & 255; y[i] = 2x[i] + 3x[i+1] + 5x[i+2] + 7x[i+3]
        ; out word = y[last] ^ round
            li   r14, {rounds}
            addi r1, r0, 0
            li   r2, {n}
            addi r3, r0, 3
        init:
            andi r4, r3, 255
            st   r4, 0(r1)
            addi r3, r3, 5
            addi r1, r1, 1
            bne  r1, r2, init
            addi r13, r0, 0      ; round
        round:
            addi r1, r0, 0
            li   r2, {n4}
        tap:
            ld   r4, 0(r1)
            slli r4, r4, 1       ; 2*x[i]
            ld   r5, 1(r1)
            addi r6, r0, 3
            mul  r5, r5, r6
            add  r4, r4, r5
            ld   r5, 2(r1)
            addi r6, r0, 5
            mul  r5, r5, r6
            add  r4, r4, r5
            ld   r5, 3(r1)
            addi r6, r0, 7
            mul  r5, r5, r6
            add  r4, r4, r5
            st   r4, {out_base}(r1)
            addi r1, r1, 1
            bne  r1, r2, tap
            subi r1, r1, 1
            ld   r4, {out_base}(r1)
            xor  r4, r4, r13
            st   r4, {out}(r0)
            addi r13, r13, 1
            subi r14, r14, 1
            yield
            bne  r14, r0, round
            halt
        "#
    );
    Kernel {
        name: "fir".into(),
        source,
        dmem_words: out as usize + 1,
        out_addr: out,
        rounds,
    }
}

/// Repeated binary searches over a sorted table — branch- and
/// latency-bound with data-dependent control flow.
pub fn bsearch(n: u32, queries: u32, rounds: u32) -> Kernel {
    assert!(n >= 4 && n.is_power_of_two() && queries >= 1 && rounds >= 1);
    let out = n;
    let source = format!(
        r#"
        ; bsearch: table[i] = 3i+1 (sorted); per round, sum the indices
        ; found for queries q = (7k + round) mod 3n
            li   r14, {rounds}
            addi r1, r0, 0
            li   r2, {n}
            addi r3, r0, 1
        init:
            st   r3, 0(r1)
            addi r3, r3, 3
            addi r1, r1, 1
            bne  r1, r2, init
            addi r13, r0, 0      ; round
            li   r12, {n3}       ; 3n (query modulus)
        round:
            addi r9, r0, 0       ; acc
            li   r8, {queries}
            addi r7, r0, 0       ; k
        query:
            ; q = (7k + round) mod 3n
            addi r4, r0, 7
            mul  r4, r4, r7
            add  r4, r4, r13
            rem  r4, r4, r12
            ; binary search for rightmost lo with table[lo] <= q
            addi r5, r0, 0       ; lo
            li   r6, {n}         ; hi
        bloop:
            sub  r10, r6, r5
            slti r11, r10, 2
            bne  r11, r0, bdone
            add  r10, r5, r6
            srli r10, r10, 1     ; mid
            ld   r11, 0(r10)
            bgt  r11, r4, bhigh
            add  r5, r10, r0
            j    bloop
        bhigh:
            add  r6, r10, r0
            j    bloop
        bdone:
            add  r9, r9, r5
            addi r7, r7, 1
            bne  r7, r8, query
            st   r9, {out}(r0)
            addi r13, r13, 1
            subi r14, r14, 1
            yield
            bne  r14, r0, round
            halt
        "#,
        n3 = 3 * n,
    );
    Kernel {
        name: "bsearch".into(),
        source,
        dmem_words: out as usize + 1,
        out_addr: out,
        rounds,
    }
}

/// The default suite at sizes that run in tens of thousands of cycles —
/// large enough for caches and predictors to matter, small enough for
/// brisk experiments.
pub fn suite(rounds: u32) -> Vec<Kernel> {
    vec![
        vecsum(256, rounds),
        crc(128, rounds),
        matmul(8, rounds),
        pchase(512, 256, rounds),
        bsort(24, rounds),
        control(128, rounds),
    ]
}

/// The extended suite: the default six plus the FIR filter and binary
/// search — eight workloads spanning streaming, MAC, dense compute,
/// pointer chasing, sorting, control, DSP and search.
pub fn extended_suite(rounds: u32) -> Vec<Kernel> {
    let mut v = suite(rounds);
    v.push(fir(64, rounds));
    v.push(bsearch(64, 24, rounds));
    v
}

/// Pure-Rust reference implementations. Each returns the expected value
/// of the kernel's output word after its final round.
pub mod oracle {
    /// See [`super::vecsum`].
    pub fn vecsum(n: u32, rounds: u32) -> u32 {
        let base: u32 = (0..n).fold(0u32, |a, i| a.wrapping_add(5 + 3 * i));
        base.wrapping_add(rounds - 1)
    }

    /// See [`super::crc`].
    pub fn crc(n: u32, rounds: u32) -> u32 {
        let x: Vec<u32> = (0..n).map(|i| 7 * i + 1).collect();
        let round = rounds - 1;
        let mut h = 17u32.wrapping_add(round);
        for v in x {
            h = h.wrapping_mul(31).wrapping_add(v);
        }
        h
    }

    /// See [`super::matmul`]: value of `C[n-1][n-1]` after the last round.
    pub fn matmul(n: u32, rounds: u32) -> u32 {
        let nn = n * n;
        let mut a: Vec<u32> = (0..nn).map(|i| i + 1).collect();
        let b: Vec<u32> = (0..nn).map(|i| 2 * i + 3).collect();
        let mut last = 0u32;
        for _ in 0..rounds {
            a[0] = a[0].wrapping_add(1);
            let i = n - 1;
            let j = n - 1;
            let mut acc = 0u32;
            for k in 0..n {
                acc =
                    acc.wrapping_add(a[(i * n + k) as usize].wrapping_mul(b[(k * n + j) as usize]));
            }
            last = acc;
        }
        last
    }

    /// See [`super::pchase`]: final pointer after the last round.
    pub fn pchase(len: u32, steps: u32, rounds: u32) -> u32 {
        let round = rounds - 1;
        let start = if round < len { round } else { 0 };
        // each hop advances by 7 (mod len)
        ((u64::from(start) + 7 * u64::from(steps)) % u64::from(len)) as u32
    }

    /// See [`super::bsort`]: median element after the last round's sort.
    pub fn bsort(n: u32, rounds: u32) -> u32 {
        let round = rounds - 1;
        let mut x: Vec<u32> = (0..n).map(|i| ((37 * i + 11) & 63) ^ round).collect();
        x.sort_unstable();
        x[(n / 2) as usize]
    }

    /// See [`super::fir`]: `y[n-5] ^ (rounds-1)` after the last round.
    pub fn fir(n: u32, rounds: u32) -> u32 {
        let x: Vec<u32> = (0..n).map(|i| (5 * i + 3) & 255).collect();
        let i = (n - 5) as usize;
        let y = 2 * x[i] + 3 * x[i + 1] + 5 * x[i + 2] + 7 * x[i + 3];
        y ^ (rounds - 1)
    }

    /// See [`super::bsearch`]: sum of found indices in the last round.
    pub fn bsearch(n: u32, queries: u32, rounds: u32) -> u32 {
        let table: Vec<u32> = (0..n).map(|i| 3 * i + 1).collect();
        let round = rounds - 1;
        let mut acc = 0u32;
        for k in 0..queries {
            let q = (7 * k + round) % (3 * n);
            // rightmost lo with table[lo] <= q, bisection as in the asm
            let (mut lo, mut hi) = (0usize, n as usize);
            while hi - lo >= 2 {
                let mid = (lo + hi) / 2;
                if table[mid] > q {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            acc = acc.wrapping_add(lo as u32);
        }
        acc
    }

    /// See [`super::control`]: y after the last round.
    pub fn control(iters: u32, rounds: u32) -> u32 {
        let mut y: i32 = 0;
        let mut integral: i32 = 0;
        let mut target: i32 = 1000;
        for _ in 0..rounds {
            for _ in 0..iters {
                let e = target - y;
                integral = integral.wrapping_add(e);
                y = y.wrapping_add((e.wrapping_mul(3).wrapping_add(integral)) >> 3);
            }
            target += 50;
        }
        y as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::{Core, CoreConfig, RunOutcome, ThreadId};

    /// Run a kernel to completion on a default core and return the value
    /// at its output address.
    fn run_kernel(k: &Kernel) -> u32 {
        let prog = k.program();
        let mut core = Core::new(CoreConfig::default());
        let t = core.add_thread(&prog, k.dmem_words);
        let mut budget = 0;
        loop {
            match core.run_until_all_blocked(50_000_000) {
                RunOutcome::AllHalted => break,
                RunOutcome::AllYielded => core.resume(t),
                other => panic!("kernel `{}` ended with {other:?}", k.name),
            }
            budget += 1;
            assert!(budget < 100_000, "kernel `{}` runaway", k.name);
        }
        core.thread(ThreadId(0)).dmem[k.out_addr as usize]
    }

    #[test]
    fn vecsum_matches_oracle() {
        for &(n, r) in &[(4u32, 1u32), (64, 3), (256, 2)] {
            assert_eq!(
                run_kernel(&vecsum(n, r)),
                oracle::vecsum(n, r),
                "n={n} r={r}"
            );
        }
    }

    #[test]
    fn crc_matches_oracle() {
        for &(n, r) in &[(8u32, 1u32), (128, 2)] {
            assert_eq!(run_kernel(&crc(n, r)), oracle::crc(n, r), "n={n} r={r}");
        }
    }

    #[test]
    fn matmul_matches_oracle() {
        for &(n, r) in &[(2u32, 1u32), (4, 2), (8, 1)] {
            assert_eq!(
                run_kernel(&matmul(n, r)),
                oracle::matmul(n, r),
                "n={n} r={r}"
            );
        }
    }

    #[test]
    fn pchase_matches_oracle() {
        for &(len, steps, r) in &[(16u32, 8u32, 1u32), (512, 256, 2)] {
            assert_eq!(
                run_kernel(&pchase(len, steps, r)),
                oracle::pchase(len, steps, r),
                "len={len} steps={steps} r={r}"
            );
        }
    }

    #[test]
    fn bsort_matches_oracle() {
        for &(n, r) in &[(8u32, 1u32), (24, 2)] {
            assert_eq!(run_kernel(&bsort(n, r)), oracle::bsort(n, r), "n={n} r={r}");
        }
    }

    #[test]
    fn control_matches_oracle() {
        for &(iters, r) in &[(16u32, 1u32), (128, 3)] {
            assert_eq!(
                run_kernel(&control(iters, r)),
                oracle::control(iters, r),
                "iters={iters} r={r}"
            );
        }
    }

    #[test]
    fn fir_matches_oracle() {
        for &(n, r) in &[(16u32, 1u32), (64, 3)] {
            assert_eq!(run_kernel(&fir(n, r)), oracle::fir(n, r), "n={n} r={r}");
        }
    }

    #[test]
    fn bsearch_matches_oracle() {
        for &(n, q, r) in &[(16u32, 8u32, 1u32), (64, 24, 2)] {
            assert_eq!(
                run_kernel(&bsearch(n, q, r)),
                oracle::bsearch(n, q, r),
                "n={n} q={q} r={r}"
            );
        }
    }

    #[test]
    fn suite_assembles_and_runs() {
        for k in extended_suite(1) {
            let _ = run_kernel(&k);
        }
    }

    #[test]
    fn rounds_yield_the_right_number_of_times() {
        let k = vecsum(8, 5);
        let prog = k.program();
        let mut core = Core::new(CoreConfig::default());
        let t = core.add_thread(&prog, k.dmem_words);
        let mut yields = 0;
        loop {
            match core.run_until_all_blocked(10_000_000) {
                RunOutcome::AllYielded => {
                    yields += 1;
                    core.resume(t);
                }
                RunOutcome::AllHalted => break,
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(yields, 5);
    }
}
