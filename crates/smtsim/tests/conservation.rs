//! Property tests for the cycle-accounting conservation law and the
//! exactness of α-attribution ledgers.
//!
//! The ledger (`vds_obs::alpha`) is only sound if, for every thread on
//! every run, `issued_cycles + stall_icache + stall_dcache + stall_fu +
//! stall_width + stall_branch + parked == cycles` — including trapping
//! runs, where the trap-transition cycle is booked as parked. These
//! properties drive random kernels on random core shapes and assert the
//! invariant, then assert the ledger identity: attributed per-cause
//! deltas + parked delta + residual equal the measured co-run excess
//! exactly, in integer arithmetic.

use proptest::prelude::*;
use vds_smtsim::core::{Core, CoreConfig, RunOutcome};
use vds_smtsim::kernels::{self, Kernel};
use vds_smtsim::{alpha, perf::ThreadCounters};

fn kernel_for(idx: u64, size: u64, rounds: u32) -> Kernel {
    let n = 16 + (size % 64) as u32;
    match idx % 6 {
        0 => kernels::vecsum(n, rounds),
        1 => kernels::crc(n, rounds),
        2 => kernels::matmul(3 + (size % 5) as u32, rounds),
        3 => {
            // pchase rejects lengths divisible by 7 (its stride trick).
            let mut len = 64 + (size % 128) as u32;
            if len.is_multiple_of(7) {
                len += 1;
            }
            kernels::pchase(len, n, rounds)
        }
        4 => kernels::bsort(4 + (size % 12) as u32, rounds),
        _ => kernels::control(n, rounds),
    }
}

fn cfg_for(width: u64, latency: u64) -> CoreConfig {
    let mut cfg = CoreConfig::default();
    cfg.issue_width = 1 + (width % 4) as usize;
    cfg.num_alu = cfg.issue_width.max(2);
    cfg.mem_latency = 5 + (latency % 30) as u32;
    cfg
}

fn assert_conserved(c: &ThreadCounters, context: &str) {
    let accounted = c.issued_cycles + c.total_stalls() + c.parked;
    assert_eq!(
        accounted,
        c.cycles,
        "{context}: issued {} + stalls {} + parked {} != cycles {}",
        c.issued_cycles,
        c.total_stalls(),
        c.parked,
        c.cycles
    );
    assert!(c.snapshot().is_conserved(), "{context}: snapshot drifted");
}

proptest! {
    #[test]
    fn per_thread_conservation_holds_on_random_runs(
        ka in 0u64..6,
        kb in 0u64..6,
        size in 0u64..1000,
        width in 0u64..4,
        latency in 0u64..30,
    ) {
        let cfg = cfg_for(width, latency);
        let a = kernel_for(ka, size, 1);
        let b = kernel_for(kb, size.wrapping_add(17), 1);

        // Solo runs and the co-run all conserve, thread by thread.
        let mut core = Core::new(cfg.clone());
        let ta = core.add_thread(&a.program(), a.dmem_words);
        let tb = core.add_thread(&b.program(), b.dmem_words);
        loop {
            match core.run_until_all_blocked(2_000_000) {
                RunOutcome::AllHalted | RunOutcome::CycleBudgetExhausted => break,
                RunOutcome::AllYielded => {
                    for t in [ta, tb] {
                        if core.thread(t).state == vds_smtsim::core::ThreadState::Yielded {
                            core.resume(t);
                        }
                    }
                }
                RunOutcome::Trapped(..) => break,
            }
        }
        for t in [ta, tb] {
            assert_conserved(&core.thread(t).counters, &format!("{}+{}", a.name, b.name));
        }
    }

    #[test]
    fn conservation_holds_on_trapping_runs(seed in 0u64..500) {
        // Corrupt one text word so decode traps mid-run (or the PC walks
        // off the end): the trap-transition cycle must still be booked.
        let k = kernel_for(seed, seed, 1);
        let mut prog = k.program();
        let idx = (seed as usize * 7) % prog.text.len();
        prog.text[idx] = 63 << 26;
        let mut core = Core::new(CoreConfig::default());
        let t = core.add_thread(&prog, k.dmem_words);
        while let RunOutcome::AllYielded = core.run_until_all_blocked(2_000_000) {
            core.resume(t);
        }
        assert_conserved(&core.thread(t).counters, &format!("trapping {}", k.name));
    }

    #[test]
    fn ledger_attribution_is_exact_on_random_pairs(
        ka in 0u64..6,
        kb in 0u64..6,
        size in 0u64..1000,
        width in 0u64..4,
        latency in 0u64..30,
    ) {
        let cfg = cfg_for(width, latency);
        let a = kernel_for(ka, size, 1);
        let b = kernel_for(kb, size.wrapping_add(29), 1);
        let m = alpha::measure(&cfg, &a, &b).expect("suite kernels complete");
        let l = alpha::measure_ledger(&cfg, &a, &b).expect("suite kernels complete");

        // The ledger's times agree with the scalar measurement…
        prop_assert_eq!((l.t_a, l.t_b, l.t_pair), (m.t_a, m.t_b, m.t_pair));
        // …the excess is the definition…
        prop_assert_eq!(l.excess, l.t_pair as i64 - l.t_a.max(l.t_b) as i64);
        // …and attributed deltas + parked + residual equal it exactly.
        let attributed: i64 = l.deltas.iter().sum();
        prop_assert_eq!(attributed + l.d_parked + l.residual, l.excess);
        prop_assert!(l.is_exact());
        // Co-scheduling never beats the critical kernel's solo time.
        prop_assert!(l.excess >= 0, "negative excess: {:?}", l);
    }
}
