//! Every registered experiment must run end-to-end at a small size and
//! produce a well-formed report whose id matches its registry entry.

use vds_bench::registry::{find, registry, Params};

/// Small sizes per experiment so the whole sweep stays fast in debug
/// builds (the heavyweight campaigns get single-digit trial counts).
fn small_params(id: &str) -> Params {
    let rounds = match id {
        "E1" => 10,
        "E2" => 12,
        "E9" => 1,
        "E10" => 4,
        "E11" => 400,
        "E12" => 60,
        "E14" => 2,
        _ => 5,
    };
    Params {
        rounds: Some(rounds),
        seed: None,
        workers: 2,
    }
}

#[test]
fn every_experiment_runs_and_reports() {
    for exp in registry() {
        let r = exp.run(&small_params(exp.id()));
        assert_eq!(r.id, exp.id());
        assert_eq!(r.title, exp.title(), "{}", exp.id());
        assert!(!r.text.trim().is_empty(), "{}: empty text", exp.id());
        // the standard metrics block is always present
        assert!(
            r.metrics.counter("report.text_bytes") > 0,
            "{}: no metrics",
            exp.id()
        );
        let rendered = format!("{r}");
        assert!(rendered.contains(exp.id()), "{}", exp.id());
    }
}

#[test]
fn registry_and_find_agree() {
    for exp in registry() {
        let found = find(exp.id()).expect("find by exact id");
        assert_eq!(found.id(), exp.id());
    }
}

#[test]
fn e10_report_carries_campaign_metrics() {
    let r = find("e10").unwrap().run(&small_params("E10"));
    assert_eq!(
        r.metrics.counter("with_diversity.campaign.trials"),
        4,
        "campaign metrics merged under the diversity prefix:\n{}",
        r.metrics
    );
    assert_eq!(r.metrics.counter("no_diversity.campaign.trials"), 4);
}
