//! E10 — fault-injection coverage on the micro platform.
//!
//! Runs a campaign of randomized faults (transient register / memory /
//! text flips, version crashes, permanent functional-unit faults) against
//! the *real* VDS (diversified programs on the cycle-level machine) and
//! classifies every trial by detection and by **output correctness**
//! against the pure-Rust oracle. The same campaign with diversity
//! disabled demonstrates the paper's core assumption: permanent faults
//! corrupt identical versions identically and escape detection.

use crate::Report;
use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng};
use std::fmt::Write as _;
use vds_core::micro_vds::{run_micro_with_state, MicroConfig, MicroFault};
use vds_core::workload;
use vds_core::{Scheme, Victim};
use vds_fault::campaign::{run_campaign, run_campaign_recorded_as, CampaignReport, TrialResult};
use vds_fault::model::{sample_fu_fault, sample_transient_site, FaultKind};
use vds_obs::Recorder;

/// One randomized trial.
fn trial(seed: u64, diversity: bool, target_rounds: u64) -> TrialResult {
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC0FFEE);
    let mut cfg = MicroConfig::new(Scheme::SmtProbabilistic, 8);
    cfg.seed = 1000 + seed; // varies the version diversification too
    cfg.diversity = diversity;
    let victim = if rng.gen() { Victim::V1 } else { Victim::V2 };
    let at_round = rng.gen_range(1..=cfg.s);
    let text_len = workload::build(4).text.len() as u32 + 8; // approx; sites clamp
    let kind = match rng.gen_range(0..10u32) {
        0..=5 => FaultKind::Transient(sample_transient_site(
            &mut rng,
            workload::DMEM_WORDS as u32,
            text_len,
        )),
        6 | 7 => FaultKind::PermanentFu(sample_fu_fault(&mut rng, 2, 1)),
        8 => FaultKind::CrashVersion,
        _ => FaultKind::Transient(sample_transient_site(&mut rng, 8, 4)),
    };
    let fault = MicroFault {
        at_round,
        victim,
        kind,
    };
    let (r, img) = run_micro_with_state(&cfg, Some(fault), target_rounds);
    let kind_tag = match kind {
        FaultKind::Transient(_) => "transient",
        FaultKind::PermanentFu(_) => "permanent",
        FaultKind::CrashVersion => "crash",
        FaultKind::ProcessorStop => "stop",
    };
    // A fail-safe shutdown is a *safe* outcome: the fault was detected
    // and the system stopped rather than emit wrong results (this is how
    // untolerable permanent faults must end on a single processor).
    if r.shutdown {
        return TrialResult::with_value(
            format!("{kind_tag}/failsafe-shutdown/output-ok"),
            r.detections as f64,
        );
    }
    let (_, want_state) = workload::oracle(r.committed_rounds as u32);
    let got = &img
        [workload::ADDR_STATE as usize..(workload::ADDR_STATE + workload::STATE_WORDS) as usize];
    let correct =
        got == &want_state[..] && img[workload::ADDR_ROUND as usize] == r.committed_rounds as u32;
    let detect_tag = if r.detections == 0 {
        "undetected"
    } else if r.rollbacks > 0 {
        "rollback"
    } else {
        "recovered"
    };
    let correct_tag = if correct { "output-ok" } else { "OUTPUT-WRONG" };
    TrialResult::with_value(
        format!("{kind_tag}/{detect_tag}/{correct_tag}"),
        r.detections as f64,
    )
}

/// Run the campaign with and without diversity.
pub fn campaign(
    trials: u64,
    workers: usize,
    target_rounds: u64,
) -> (CampaignReport, CampaignReport) {
    let with = run_campaign(trials, workers, |i| trial(i, true, target_rounds));
    let without = run_campaign(trials, workers, |i| trial(i, false, target_rounds));
    (with, without)
}

/// [`campaign`] with metrics: both campaigns' registries merged into one
/// recorder under `with_diversity.*` / `no_diversity.*` (content is
/// worker-count invariant).
pub fn campaign_recorded(
    trials: u64,
    workers: usize,
    target_rounds: u64,
) -> (CampaignReport, CampaignReport, Recorder) {
    let (with, rec_with) = run_campaign_recorded_as("campaign-div", trials, workers, |i, _| {
        trial(i, true, target_rounds)
    });
    let (without, rec_without) =
        run_campaign_recorded_as("campaign-ident", trials, workers, |i, _| {
            trial(i, false, target_rounds)
        });
    let mut rec = Recorder::new();
    rec.merge_prefixed(rec_with.registry(), "with_diversity");
    rec.merge_prefixed(rec_without.registry(), "no_diversity");
    rec.merge_spans(&rec_with);
    rec.merge_spans(&rec_without);
    (with, without, rec)
}

/// Silent-failure rate: trials that went undetected AND produced wrong
/// output.
pub fn silent_wrong_rate(r: &CampaignReport) -> f64 {
    let silent: u64 = r
        .counts
        .iter()
        .filter(|(l, _)| l.contains("undetected") && l.contains("OUTPUT-WRONG"))
        .map(|(_, c)| *c)
        .sum();
    silent as f64 / r.trials.max(1) as f64
}

/// Detected-or-harmless rate (coverage in the dependability sense).
pub fn coverage(r: &CampaignReport) -> f64 {
    1.0 - silent_wrong_rate(r)
}

/// Regenerate the coverage tables.
pub fn report(trials: u64, workers: usize) -> Report {
    let (with, without, rec) = campaign_recorded(trials, workers, 16);
    let mut text = String::new();
    let _ = writeln!(text, "diversified versions ({} trials):", with.trials);
    let _ = write!(text, "{with}");
    let _ = writeln!(
        text,
        "coverage (detected or output still correct): {:.2}%",
        100.0 * coverage(&with)
    );
    let _ = writeln!(
        text,
        "\nidentical versions — diversity DISABLED ({} trials):",
        without.trials
    );
    let _ = write!(text, "{without}");
    let _ = writeln!(
        text,
        "coverage: {:.2}%   silent wrong output: {:.2}%  (diversity's raison d'être: {:.2}% with diversity)",
        100.0 * coverage(&without),
        100.0 * silent_wrong_rate(&without),
        100.0 * silent_wrong_rate(&with),
    );
    let _ = writeln!(
        text,
        "\nreading the failure modes:\n\
         * crash/recovered — trap evidence identifies the victim; always healed.\n\
         * permanent/failsafe-shutdown — a stuck unit corrupts every round;\n\
           detectable but not tolerable on one processor: the watchdog stops\n\
           the system safely (the flow charts' terminal state).\n\
         * transient or permanent …/OUTPUT-WRONG — almost all trace back to\n\
           corruption of the *read-only table*, which lies outside the\n\
           comparison window: it stays latent until it poisons a checkpoint,\n\
           after which the majority vote itself replays the corrupt\n\
           trajectory. This is precisely the gap the paper's \"error\n\
           detecting codes for data in the memory\" assumption closes —\n\
           see `vds_fault::memory::ProtectedMemory` (SEC-DED + scrubbing)\n\
           for the substrate that would catch these at the first read.\n\
         * transient/undetected/output-ok — architecturally masked flips\n\
           (dead registers at round boundaries, unread words)."
    );
    let mut csv = String::from("diversity,label,count\n");
    for (set, name) in [(&with, "on"), (&without, "off")] {
        for (l, c) in &set.counts {
            let _ = writeln!(csv, "{name},{l},{c}");
        }
    }
    let (metrics, _, spans) = rec.into_parts();
    Report {
        id: "E10",
        title: "Fault-injection coverage on the micro platform",
        text,
        data: vec![("coverage.csv".into(), csv)],
        metrics,
        spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Campaigns are expensive in debug builds; tests run small ones and
    // the binary runs the full 400-trial version.

    #[test]
    fn transient_memory_faults_are_covered_with_diversity() {
        // 16 trials is small enough for sampling noise to cross the 0.2
        // threshold; 48 keeps the check meaningful at tolerable cost
        let (with, _) = campaign(48, 8, 10);
        assert_eq!(with.trials, 48);
        // with diversity, silent wrong output should be rare
        assert!(
            silent_wrong_rate(&with) < 0.2,
            "silent rate {} too high:\n{with}",
            silent_wrong_rate(&with)
        );
    }

    #[test]
    fn campaign_deterministic() {
        let (a, _) = campaign(8, 1, 10);
        let (b, _) = campaign(8, 4, 10);
        assert_eq!(a.counts, b.counts);
    }
}
