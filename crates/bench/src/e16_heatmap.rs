//! E16 — the `s` × scheme heatmap under stochastic faults.
//!
//! §2.2 picks the checkpoint distance `s` as the lever trading
//! checkpoint overhead against replay length; the recovery schemes then
//! differ in how much of a window they salvage after a detection. This
//! experiment sweeps the full cross product — every scheme against a
//! geometric ladder of `s` values, at the paper's α = 0.65 under a
//! per-round fault rate — and renders two heatmaps: measured `G_round`
//! (throughput versus the conventional reference at the same `s` and
//! fault load) and the roll-forward hit rate. The full per-cell CSV is
//! attached for external plotting; its bytes are worker-count invariant.

use crate::Report;
use std::fmt::Write as _;
use vds_core::Scheme;
use vds_sweep::{run_sweep, CellResult, GridSpec};

/// Checkpoint-distance axis: a geometric ladder around the paper's s=20.
pub const S_VALUES: [u32; 5] = [5, 10, 20, 40, 80];

/// Per-round fault probability for the study.
pub const Q: f64 = 0.02;

fn heatmap(
    text: &mut String,
    title: &str,
    results: &[CellResult],
    value: impl Fn(&CellResult) -> String,
) {
    let _ = writeln!(text, "{title}");
    let mut header = format!("{:<14}", "scheme \\ s");
    for s in S_VALUES {
        let _ = write!(header, " {s:>8}");
    }
    let _ = writeln!(text, "{header}");
    for scheme in Scheme::ALL {
        let _ = write!(text, "{:<14}", scheme.name());
        for s in S_VALUES {
            let cell = results
                .iter()
                .find(|r| r.cell.scheme == scheme && r.cell.s == s)
                .expect("cell present");
            let _ = write!(text, " {:>8}", value(cell));
        }
        let _ = writeln!(text);
    }
    let _ = writeln!(text);
}

/// Regenerate the heatmap study. `rounds` sizes each cell's mission.
pub fn report(rounds: u64, workers: usize, seed: u64) -> Report {
    let spec = GridSpec {
        alphas: vec![0.65],
        s_values: S_VALUES.to_vec(),
        schemes: Scheme::ALL.to_vec(),
        qs: vec![Q],
        rounds,
        base_seed: seed,
        ..GridSpec::default()
    };
    let outcome = run_sweep(&spec, workers, None, &Default::default(), None);

    let mut text = format!(
        "s x scheme sweep: {} cells, alpha=0.65, q={Q}, {} rounds/cell\n\n",
        outcome.results.len(),
        rounds
    );
    heatmap(
        &mut text,
        "G_round (measured, vs the conventional reference at the same s and q):",
        &outcome.results,
        |r| format!("{:.4}", r.g_round),
    );
    heatmap(
        &mut text,
        "roll-forward hit rate (windows whose progress survived):",
        &outcome.results,
        |r| {
            let attempts = r.rf_hits + r.rf_misses + r.rf_discards;
            if attempts == 0 {
                "-".into()
            } else {
                format!("{:.3}", r.rf_hit_rate)
            }
        },
    );
    let _ = writeln!(
        text,
        "the SMT rows sit near Eq. (4)'s 1/α = {:.4} at every s; the deterministic\n\
         and boosted schemes keep their advantage as s grows because a longer window\n\
         makes the guaranteed roll-forward worth more (§3.1), while the probabilistic\n\
         scheme pays for every wrong pick with a full replay",
        1.0 / 0.65
    );
    Report {
        id: "E16",
        title: "s × scheme heatmap under stochastic faults (sweep-backed)",
        text,
        data: vec![(
            "s_scheme_heatmap.csv".into(),
            // measured columns only: the attachment bytes feed the
            // work-unit gate, so this artefact is byte-pinned (the
            // conformance columns live in `vds sweep` exports)
            vds_sweep::to_measured_csv(&outcome.results),
        )],
        metrics: outcome.registry,
        spans: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_covers_the_full_cross_product() {
        let r = report(200, 3, 1);
        assert_eq!(r.id, "E16");
        assert_eq!(
            r.metrics.counter("sweep.cells_total"),
            (S_VALUES.len() * Scheme::ALL.len()) as u64
        );
        for scheme in Scheme::ALL {
            assert!(r.text.contains(scheme.name()), "{}", r.text);
        }
        // conventional row is the G_round ≈ 1 reference
        assert!(r.text.contains("conventional"), "{}", r.text);
        let csv = &r.data[0].1;
        assert_eq!(csv.lines().count(), 1 + 30, "{csv}");
    }

    #[test]
    fn report_is_worker_count_invariant() {
        let a = report(120, 1, 7);
        let b = report(120, 5, 7);
        assert_eq!(a.text, b.text);
        assert_eq!(a.data, b.data);
        assert_eq!(a.metrics, b.metrics);
    }
}
