//! E18 — real programs under duplex: the bytecode-VM workload.
//!
//! The micro platform runs a synthetic mix; this experiment duplexes the
//! four `vds-vm` seed programs (checksum, sort, matmul, strhash) as two
//! diversified variants under [`vds_core::vm_vds`] and measures what the
//! paper's model predicts qualitatively:
//!
//! 1. **Round gain** — each SMT scheme's total time against the
//!    conventional (serial) execution of the same program, fault-free.
//!    `g_vs_serial > 1` is the co-scheduling win of Eq. (4) realised on
//!    a real instruction stream.
//! 2. **Coverage** — a seeded architectural-state fault campaign
//!    ([`vds_fault::vm::sample_vm_site`]: registers, pc, literal pool,
//!    data memory) per program, with every trial classified
//!    detected / masked / escaped and the conservation invariant
//!    `detected + masked + escaped == injected` checked row by row.
//!
//! Everything is seed-determined and single-threaded, so the report is
//! byte-identical across runs and worker counts.

use crate::Report;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use vds_core::vm_vds::{run_vm_duplex, run_vm_duplex_with_state, VmConfig, VmFault};
use vds_core::{Scheme, Victim};
use vds_fault::vm::sample_vm_site;

/// Fault-free rounds for the gain table.
const GAIN_ROUNDS: u64 = 20;

/// Schemes in the gain table (the serial baseline first).
const SCHEMES: &[Scheme] = &[
    Scheme::Conventional,
    Scheme::SmtDeterministic,
    Scheme::SmtProbabilistic,
    Scheme::SmtPredictive,
];

/// Run the VM duplex gain table and per-program fault campaigns.
/// `trials` is the campaign size per program.
pub fn report(trials: u64, seed: u64) -> Report {
    let trials = trials.max(1);
    let mut text = format!(
        "E18 — bytecode-VM programs under duplex (seed {seed}, {trials} trials/program)\n\n\
         {:<10} {:<14} {:>9} {:>12} {:>12}\n",
        "program", "scheme", "committed", "total_time", "g_vs_serial"
    );
    let mut gain_csv = String::from("program,scheme,committed,total_time,g_vs_serial\n");
    let mut metrics = vds_obs::Registry::new();

    for sp in vds_vm::SEED_PROGRAMS {
        let mut serial_time = 0.0f64;
        for &scheme in SCHEMES {
            let mut cfg = VmConfig::new(sp.name);
            cfg.scheme = scheme;
            cfg.seed = seed;
            let r = run_vm_duplex(&cfg, None, GAIN_ROUNDS);
            if scheme == Scheme::Conventional {
                serial_time = r.total_time;
            }
            let g = serial_time / r.total_time.max(1e-9);
            let _ = writeln!(
                text,
                "{:<10} {:<14} {:>9} {:>12.1} {:>12.4}",
                sp.name,
                scheme.name(),
                r.committed_rounds,
                r.total_time,
                g
            );
            let _ = writeln!(
                gain_csv,
                "{},{},{},{},{g}",
                sp.name,
                scheme.name(),
                r.committed_rounds,
                r.total_time
            );
            metrics.count(
                &format!("vm.{}.{}.steps", sp.name, scheme.name()),
                r.total_time as u64,
            );
        }
    }

    let _ = writeln!(
        text,
        "\n{:<10} {:>7} {:>9} {:>7} {:>8} {:>9}",
        "program", "trials", "detected", "masked", "escaped", "coverage"
    );
    let mut campaign_csv =
        String::from("program,trials,injected,detected,masked,escaped,coverage\n");
    for sp in vds_vm::SEED_PROGRAMS {
        let lit_words = sp.assembled().lits.len() as u32;
        let mut cfg = VmConfig::new(sp.name);
        cfg.scheme = Scheme::SmtDeterministic;
        let (mut detected, mut masked, mut escaped) = (0u64, 0u64, 0u64);
        for i in 0..trials {
            let mut rng = SmallRng::seed_from_u64(
                i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed) ^ 0xE18,
            );
            cfg.seed = seed.wrapping_add(i);
            let fault = VmFault {
                at_round: rng.gen_range(1..=cfg.s),
                victim: if rng.gen() { Victim::V1 } else { Victim::V2 },
                site: sample_vm_site(&mut rng, vds_vm::DMEM_WORDS as u32, lit_words),
            };
            let (r, _) = run_vm_duplex_with_state(&cfg, Some(fault), GAIN_ROUNDS);
            detected += r.faults_detected;
            masked += r.faults_masked;
            escaped += r.faults_escaped;
        }
        let coverage = detected as f64 / trials as f64;
        let _ = writeln!(
            text,
            "{:<10} {:>7} {:>9} {:>7} {:>8} {:>9.4}",
            sp.name, trials, detected, masked, escaped, coverage
        );
        let _ = writeln!(
            campaign_csv,
            "{},{trials},{trials},{detected},{masked},{escaped},{coverage}",
            sp.name
        );
        metrics.count(&format!("vm.{}.campaign.detected", sp.name), detected);
        metrics.count(&format!("vm.{}.campaign.masked", sp.name), masked);
        metrics.count(&format!("vm.{}.campaign.escaped", sp.name), escaped);
    }
    let _ = writeln!(
        text,
        "\nevery campaign row satisfies detected + masked + escaped == injected\n\
         (the forensics conservation invariant, per trial and in aggregate)"
    );

    Report {
        id: "E18",
        title: "Real programs under duplex: the bytecode-VM workload",
        text,
        data: vec![
            ("vm_gain.csv".into(), gain_csv),
            ("vm_campaign.csv".into(), campaign_csv),
        ],
        metrics,
        spans: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_deterministic_and_conserves_faults() {
        let r1 = report(12, 1);
        let r2 = report(12, 1);
        assert_eq!(r1.text, r2.text);
        assert_eq!(r1.data, r2.data);
        // every campaign row balances and detects something
        for line in r1.data[1].1.lines().skip(1) {
            let f: Vec<&str> = line.split(',').collect();
            let injected: u64 = f[2].parse().unwrap();
            let detected: u64 = f[3].parse().unwrap();
            let masked: u64 = f[4].parse().unwrap();
            let escaped: u64 = f[5].parse().unwrap();
            assert_eq!(detected + masked + escaped, injected, "{line}");
            assert!(detected > 0, "coverage must be > 0: {line}");
        }
    }

    #[test]
    fn smt_schemes_beat_the_serial_baseline_on_every_program() {
        let r = report(1, 1);
        for line in r.data[0].1.lines().skip(1) {
            let f: Vec<&str> = line.split(',').collect();
            let g: f64 = f[4].parse().unwrap();
            if f[1] == "conventional" {
                assert!((g - 1.0).abs() < 1e-12, "{line}");
            } else {
                assert!(g > 1.0, "SMT scheme must beat serial: {line}");
            }
        }
    }
}
