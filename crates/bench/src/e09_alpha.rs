//! E9 — measuring α on the cycle-level SMT machine.
//!
//! The paper takes α = 0.65 from Intel's published figures; here we
//! co-schedule every ordered pair of workload kernels on the simulated
//! 2-way core and *measure* α, reporting the pair matrix and the implied
//! normal-processing gain `G_round ≈ 1/α` for each pair.

use crate::Report;
use std::fmt::Write as _;
use vds_smtsim::alpha::measure_matrix;
use vds_smtsim::core::CoreConfig;
use vds_smtsim::kernels;

/// Measure the α matrix at the given per-kernel round count.
pub fn report(rounds: u32) -> Report {
    let cfg = CoreConfig::default();
    let ks = kernels::suite(rounds);
    let rows = measure_matrix(&cfg, &ks).expect("suite kernels complete");
    let names: Vec<&str> = ks.iter().map(|k| k.name.as_str()).collect();

    let mut text = String::new();
    let mut csv = String::from("kernel_a,kernel_b,t_a,t_b,t_pair,alpha\n");
    let _ = write!(text, "{:>8} |", "α");
    for n in &names {
        let _ = write!(text, " {n:>7}");
    }
    let _ = writeln!(text);
    let mut stats = vds_desim::stats::OnlineStats::new();
    for a in &names {
        let _ = write!(text, "{a:>8} |");
        for b in &names {
            let m = rows
                .iter()
                .find(|(ra, rb, _)| ra == a && rb == b)
                .map(|(_, _, m)| m)
                .expect("matrix complete");
            let _ = write!(text, " {:>7.3}", m.alpha);
            stats.push(m.alpha);
            let _ = writeln!(csv, "{a},{b},{},{},{},{}", m.t_a, m.t_b, m.t_pair, m.alpha);
        }
        let _ = writeln!(text);
    }
    let _ = writeln!(
        text,
        "\nmeasured α: mean={:.3} min={:.3} max={:.3}  (paper assumes α≈0.65 for the Pentium 4)",
        stats.mean(),
        stats.min(),
        stats.max()
    );
    let _ = writeln!(text, "implied G_round at mean α: {:.3}", 1.0 / stats.mean());
    let _ = writeln!(
        text,
        "note: pairs of cache-thrashing kernels can exceed α = 1 (co-running\n\
         hurts) — real SMT machines show the same pathology; the paper's model\n\
         assumes workloads in the α < 1 regime"
    );
    Report {
        id: "E9",
        title: "Measured SMT contention factor α on the simulated machine",
        text,
        data: vec![("alpha_matrix.csv".into(), csv)],
        metrics: Default::default(),
        spans: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use vds_smtsim::alpha::measure;
    use vds_smtsim::core::CoreConfig;
    use vds_smtsim::kernels;

    // The full 6×6 matrix is expensive in debug builds; tests use a
    // small sub-matrix and the binary regenerates the full one.
    #[test]
    fn submatrix_alpha_values_in_model_range() {
        let cfg = CoreConfig::default();
        let ks = [kernels::crc(32, 1), kernels::control(32, 1)];
        for a in &ks {
            for b in &ks {
                let m = measure(&cfg, a, b).unwrap();
                assert!(
                    (0.45..=1.05).contains(&m.alpha),
                    "{}×{}: alpha={}",
                    a.name,
                    b.name,
                    m.alpha
                );
            }
        }
    }

    #[test]
    fn matmul_pair_near_papers_alpha() {
        let cfg = CoreConfig::default();
        let k = kernels::matmul(6, 1);
        let m = measure(&cfg, &k, &k).unwrap();
        assert!((0.5..=0.85).contains(&m.alpha), "α = {}", m.alpha);
    }
}
