//! E8 — the `G_max` limit: convergence of `Ḡ_corr` in the checkpoint
//! interval `s`, the paper's headline `G_max ≈ 1.38`, and the "even with
//! weak multithreading we do not lose" claim.

use crate::Report;
use std::fmt::Write as _;
use vds_analytic::predictive::{g_max, gbar_corr_exact};
use vds_analytic::Params;

/// Regenerate the convergence table and headline numbers.
pub fn report() -> Report {
    let mut text = String::new();
    let mut csv = String::from("s,p,gbar_exact,g_max\n");
    let (alpha, beta) = (0.65, 0.1);
    let _ = writeln!(text, "Ḡ_corr convergence in s at α={alpha}, β={beta}:");
    for &p in &[0.5, 1.0] {
        for &s in &[5u32, 10, 20, 40, 80, 160] {
            let params = Params::with_beta(alpha, beta, s);
            let g = gbar_corr_exact(&params, p);
            let lim = g_max(alpha, beta, p);
            let _ = writeln!(
                text,
                "  p={p:.1} s={s:>3}: Ḡ_corr={g:.4}   (limit {lim:.4}, gap {:.2}%)",
                100.0 * (lim - g).abs() / lim
            );
            let _ = writeln!(csv, "{s},{p},{g},{lim}");
        }
    }
    let headline = g_max(0.65, 0.1, 0.5);
    let weak = g_max(0.95, 0.1, 0.5);
    let _ = writeln!(
        text,
        "\nheadline: G_max(α=0.65, β=0.1, p=0.5) = {headline:.3}  (paper: ≈1.38)"
    );
    let _ = writeln!(
        text,
        "weak multithreading (α=0.95, <10% benefit): G_max = {weak:.3}  (paper: ≈1.0, 'we still would not lose')"
    );
    let _ = writeln!(
        text,
        "note: beyond s=20 Ḡ_corr is already very close to the limit (paper's remark)"
    );
    Report {
        id: "E8",
        title: "G_max — limit of the expected recovery gain",
        text,
        data: vec![("gmax_convergence.csv".into(), csv)],
        metrics: Default::default(),
        spans: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_number() {
        assert!((g_max(0.65, 0.1, 0.5) - 1.38).abs() < 0.01);
    }

    #[test]
    fn convergence_is_monotone_toward_limit() {
        let lim = g_max(0.65, 0.1, 0.5);
        let mut last_gap = f64::INFINITY;
        for &s in &[5u32, 10, 20, 40, 80, 160] {
            let g = gbar_corr_exact(&Params::with_beta(0.65, 0.1, s), 0.5);
            let gap = (lim - g).abs();
            assert!(gap < last_gap, "s={s}");
            last_gap = gap;
        }
        // convergence is O(1/s); at s = 160 the gap is below 2%
        assert!(last_gap < 0.02, "gap at s=160: {last_gap}");
    }

    #[test]
    fn weak_multithreading_does_not_lose() {
        let g = g_max(0.95, 0.1, 0.5);
        assert!(g > 0.94 && g < 1.1, "g={g}");
    }

    #[test]
    fn report_renders() {
        let r = report();
        assert!(r.text.contains("1.38"));
        assert!(r.data[0].1.lines().count() == 13);
    }
}
