//! E17 — α-decomposition: the per-cycle interference ledger across
//! kernel pairs.
//!
//! E9 measures α as an end-to-end cycle ratio; this experiment *explains*
//! it. For every unordered kernel-suite pair it runs the differential
//! cycle accounting of `vds_obs::alpha`: solo-run and co-run counter
//! snapshots, the co-run's excess over the critical kernel, and the
//! per-cause attribution (Δicache/Δdcache/Δfu/Δwidth/Δbranch + parked +
//! residual) that sums to the excess exactly. The report is the ledger
//! table, a CSV block, and the `smt.alpha` / `alpha.stall.*` /
//! `alpha_excess_cycles` metric families.

use crate::Report;
use std::fmt::Write as _;
use vds_smtsim::alpha::ledger_matrix;
use vds_smtsim::core::CoreConfig;
use vds_smtsim::kernels;

/// Run the ledger over every unordered suite pair at the given
/// per-kernel round count.
pub fn report(rounds: u32) -> Report {
    let cfg = CoreConfig::default();
    let ks = kernels::suite(rounds);
    let ledger = ledger_matrix(&cfg, &ks).expect("suite kernels complete");

    let mut text = ledger.render_text();
    let _ = writeln!(
        text,
        "\nevery row satisfies d_icache+d_dcache+d_fu+d_width+d_branch+d_park+resid == t_pair - max(t_a, t_b)"
    );
    let _ = writeln!(
        text,
        "(the conservation invariant; the residual is the unattributed remainder)"
    );

    let mut csv = String::from(
        "kernel_a,kernel_b,t_a,t_b,t_pair,alpha,excess,d_icache,d_dcache,d_fu,d_width,d_branch,d_parked,residual,dominant_stall\n",
    );
    for p in &ledger.pairs {
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            p.kernel_a,
            p.kernel_b,
            p.t_a,
            p.t_b,
            p.t_pair,
            p.alpha,
            p.excess,
            p.deltas[0],
            p.deltas[1],
            p.deltas[2],
            p.deltas[3],
            p.deltas[4],
            p.d_parked,
            p.residual,
            p.dominant_stall()
        );
    }

    let mut metrics = vds_obs::Registry::new();
    ledger.export_metrics(&mut metrics);

    Report {
        id: "E17",
        title: "α-decomposition: per-cycle SMT interference ledger",
        text,
        data: vec![("alpha_ledger.csv".into(), csv)],
        metrics,
        spans: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_exact_and_deterministic() {
        let r1 = report(1);
        let r2 = report(1);
        assert_eq!(r1.text, r2.text);
        assert_eq!(r1.data, r2.data);
        assert!(r1.text.contains("worst pair"));
        assert!(r1.data[0]
            .1
            .starts_with("kernel_a,kernel_b,t_a,t_b,t_pair,alpha,excess"));
        // 6 suite kernels → 21 unordered pairs.
        assert_eq!(r1.data[0].1.lines().count(), 22);
        assert!(r1.metrics.gauge_value("smt.alpha").is_some());
        assert!(r1.metrics.histogram("alpha_excess_cycles").is_some());
    }

    #[test]
    fn ledger_rows_balance() {
        let r = report(1);
        for line in r.data[0].1.lines().skip(1) {
            let f: Vec<&str> = line.split(',').collect();
            let excess: i64 = f[6].parse().unwrap();
            let parts: i64 = f[7..14].iter().map(|x| x.parse::<i64>().unwrap()).sum();
            assert_eq!(parts, excess, "unbalanced row: {line}");
        }
    }
}
