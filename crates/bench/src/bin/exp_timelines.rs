//! E2 — regenerate the Figure 1 execution-model timelines.
fn main() {
    print!("{}", vds_bench::e02_timelines::report(8, 24, 140));
}
