//! E5 — regenerate the Eq. (8) probabilistic roll-forward curve.
fn main() {
    print!("{}", vds_bench::e05_prob_rollforward::report());
}
