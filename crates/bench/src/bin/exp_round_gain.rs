//! E1 — regenerate the Eq. (4) normal-processing speedup table.
fn main() {
    print!("{}", vds_bench::e01_round_gain::report(200));
}
