//! E3 — export the Figures 2–3 recovery flow charts as Graphviz DOT.
fn main() {
    print!("{}", vds_bench::e03_flowcharts::report());
}
