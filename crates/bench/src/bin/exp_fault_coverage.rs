//! E10 — fault-injection coverage campaign on the micro platform.
fn main() {
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    print!("{}", vds_bench::e10_coverage::report(400, workers));
}
