//! E8 — regenerate the G_max convergence table and headline numbers.
fn main() {
    print!("{}", vds_bench::e08_gmax::report());
}
