//! E12 — checkpoint-interval trade-off under stochastic faults.
fn main() {
    print!("{}", vds_bench::e12_checkpoint::report(2_000));
}
