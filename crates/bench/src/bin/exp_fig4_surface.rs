//! E6 — regenerate the Figure 4 gain surface (p = 0.5).
fn main() {
    print!("{}", vds_bench::e06_fig4::report());
}
