//! E11 — predictor accuracy and its end-to-end recovery-gain value.
fn main() {
    print!("{}", vds_bench::e11_prediction::report(20_000));
}
