//! E13 — §5 boosted multi-thread recovery and the clock trade.
fn main() {
    print!("{}", vds_bench::e13_multithread::report());
}
