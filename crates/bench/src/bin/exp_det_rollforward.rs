//! E4 — regenerate the Eqs. (6)–(7) deterministic roll-forward curves.
fn main() {
    print!("{}", vds_bench::e04_det_rollforward::report());
}
