//! E7 — regenerate the Figure 5 gain surface (p = 1.0).
fn main() {
    print!("{}", vds_bench::e07_fig5::report());
}
