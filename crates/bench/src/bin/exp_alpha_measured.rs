//! E9 — measure the SMT contention factor α across kernel pairs.
fn main() {
    print!("{}", vds_bench::e09_alpha::report(3));
}
