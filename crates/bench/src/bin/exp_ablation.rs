//! E14 — design-choice ablation studies.
fn main() {
    print!("{}", vds_bench::e14_ablation::report(60));
}
