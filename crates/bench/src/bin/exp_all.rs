//! Run every experiment (E1–E14) in sequence, at moderate sizes, and
//! print all reports. `cargo run -p vds-bench --release --bin exp_all`
//! regenerates every figure/table of the paper in one go.

use vds_bench::registry::{registry, Params};

fn main() {
    for exp in registry() {
        // campaign-style experiments get a larger budget than the CLI's
        // interactive defaults
        let rounds = match exp.id() {
            "E10" => Some(400),
            "E12" => Some(2_000),
            "E14" => Some(60),
            _ => None,
        };
        let p = Params {
            rounds,
            ..Params::default()
        };
        print!("{}", exp.run(&p));
    }
}
