//! Run every experiment (E1–E13) in sequence, at moderate sizes, and
//! print all reports. `cargo run -p vds-bench --release --bin exp_all`
//! regenerates every figure/table of the paper in one go.
fn main() {
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    print!("{}", vds_bench::e01_round_gain::report(200));
    print!("{}", vds_bench::e02_timelines::report(8, 24, 140));
    print!("{}", vds_bench::e03_flowcharts::report());
    print!("{}", vds_bench::e04_det_rollforward::report());
    print!("{}", vds_bench::e05_prob_rollforward::report());
    print!("{}", vds_bench::e06_fig4::report());
    print!("{}", vds_bench::e07_fig5::report());
    print!("{}", vds_bench::e08_gmax::report());
    print!("{}", vds_bench::e09_alpha::report(3));
    print!("{}", vds_bench::e10_coverage::report(400, workers));
    print!("{}", vds_bench::e11_prediction::report(20_000));
    print!("{}", vds_bench::e12_checkpoint::report(2_000));
    print!("{}", vds_bench::e13_multithread::report());
    print!("{}", vds_bench::e14_ablation::report(60));
}
