//! E6 — Figure 4: the gain surface `Ḡ_corr(α, β)` for p = 0.5, s = 20,
//! computed from the exact equations (10)–(14), exactly as the paper
//! does, plus abstract-engine spot checks at selected grid points.

use crate::Report;
use std::fmt::Write as _;
use vds_analytic::figures::{gain_surface, GainGrid};
use vds_analytic::Params;
use vds_core::abstract_vds::AbstractConfig;
use vds_core::gain::average_incident_gain;
use vds_core::Scheme;
use vds_desim::series::Surface;

/// Wrap an analytic [`GainGrid`] into a renderable [`Surface`].
pub fn to_surface(grid: &GainGrid) -> Surface {
    Surface {
        xs: grid.alphas.clone(),
        ys: grid.betas.clone(),
        z: grid.gain.clone(),
        labels: ("alpha".into(), "beta".into(), "gain".into()),
    }
}

/// Build the figure for the given prediction accuracy.
pub fn figure_report(id: &'static str, title: &'static str, p_correct: f64) -> Report {
    let grid = gain_surface(p_correct, 20, 26, 21);
    let surface = to_surface(&grid);
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Ḡ_corr(α, β), p = {p_correct}, s = 20 — exact Eqs. (10)–(14)"
    );
    let _ = writeln!(
        text,
        "range: min {:.3} (α={:.2}, β={:.2}) … max {:.3} (α={:.2}, β={:.2})",
        grid.min(),
        1.0,
        0.0,
        grid.max(),
        0.5,
        1.0
    );
    let _ = writeln!(text, "{}", surface.render_ascii());

    // engine spot checks on a 3×3 subgrid (evaluated at the exact
    // (α, β) points — the plot grid itself has 0.02 α-spacing)
    let _ = writeln!(text, "engine spot checks (measured vs analytic):");
    for &alpha in &[0.5, 0.65, 0.9] {
        for &beta in &[0.0, 0.1, 0.5] {
            let p = Params::with_beta(alpha, beta, 20);
            let cfg = AbstractConfig::new(p, Scheme::SmtPredictive);
            let measured = average_incident_gain(&cfg, p_correct);
            let analytic = vds_analytic::predictive::gbar_corr_exact(&p, p_correct);
            let _ = writeln!(
                text,
                "  α={alpha:.2} β={beta:.2}: measured={measured:.4} analytic={analytic:.4} Δ={:.2e}",
                (measured - analytic).abs()
            );
        }
    }
    Report {
        id,
        title,
        text,
        data: vec![
            ("surface_long.csv".into(), surface.to_csv_long()),
            ("surface_matrix.tsv".into(), surface.to_tsv_matrix()),
        ],
        metrics: Default::default(),
        spans: Default::default(),
    }
}

/// Figure 4 (p = 0.5).
pub fn report() -> Report {
    figure_report("E6", "Figure 4 — Ḡ_corr(α, β) for p = 0.5", 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_shape_and_operating_point() {
        let grid = gain_surface(0.5, 20, 26, 21);
        // paper's headline: ≈1.38 at (0.65, 0.1)
        let v = grid.nearest(0.65, 0.1);
        assert!((v - 1.38).abs() < 0.05, "fig4(0.65, 0.1) = {v}");
        // surfaces span > 1 dynamic range
        assert!(grid.max() > 1.5 && grid.min() < 1.0);
    }

    #[test]
    fn engine_spot_checks_agree() {
        // measured (integral predictive x) must equal analytic exactly
        // because min(i, s−i) is already integral
        let r = report();
        for line in r.text.lines().filter(|l| l.contains("Δ=")) {
            let delta: f64 = line.split("Δ=").nth(1).unwrap().trim().parse().unwrap();
            assert!(delta < 1e-9, "{line}");
        }
    }

    #[test]
    fn data_blocks_present() {
        let r = report();
        assert_eq!(r.data.len(), 2);
        assert!(r.data[0].1.starts_with("alpha,beta,gain"));
        assert_eq!(r.data[0].1.lines().count(), 1 + 26 * 21);
    }
}
