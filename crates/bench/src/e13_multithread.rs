//! E13 — the §5 outlook: more than two hardware threads, and the clock
//! trade.
//!
//! * **Boosted variants**: 3-thread probabilistic and 5-thread
//!   deterministic recovery, evaluated with the `α_k` contention model
//!   and by the abstract engine.
//! * **Clock scaling**: "we could employ a multithreaded processor with a
//!   clock frequency reduced by a factor of at least 1/α" — the frequency
//!   ratio for equal performance and the implied dynamic-power saving.

use crate::Report;
use std::fmt::Write as _;
use vds_analytic::multithread::{
    alpha_k, dynamic_power_ratio, equal_performance_clock_ratio, gbar_boost3_exact,
    gbar_boost5_exact,
};
use vds_analytic::predictive::gbar_corr_exact;
use vds_analytic::Params;
use vds_core::abstract_vds::AbstractConfig;
use vds_core::gain::average_incident_gain;
use vds_core::Scheme;

/// Regenerate the boosted-variant and clock-trade tables.
pub fn report() -> Report {
    let mut text = String::new();
    let mut csv = String::from("alpha,scheme,p,gbar_analytic,gbar_measured\n");
    let _ = writeln!(
        text,
        "recovery gain by scheme and α (s = 20, β = 0.1; α_k interpolated from α₂):"
    );
    let _ = writeln!(
        text,
        "{:>6} {:>12} {:>5} {:>10} {:>10}",
        "alpha", "scheme", "p", "analytic", "measured"
    );
    for &alpha in &[0.5, 0.65, 0.8] {
        let params = Params::with_beta(alpha, 0.1, 20);
        for (scheme, p) in [
            (Scheme::SmtPredictive, 0.5),
            (Scheme::SmtBoosted3, 0.5),
            (Scheme::SmtBoosted3, 1.0),
            (Scheme::SmtBoosted5, 1.0), // p irrelevant: guaranteed
        ] {
            let analytic = match scheme {
                Scheme::SmtPredictive => gbar_corr_exact(&params, p),
                Scheme::SmtBoosted3 => gbar_boost3_exact(&params, p),
                Scheme::SmtBoosted5 => gbar_boost5_exact(&params),
                _ => unreachable!(),
            };
            let cfg = AbstractConfig::new(params, scheme);
            let measured = average_incident_gain(&cfg, p);
            let _ = writeln!(
                text,
                "{alpha:>6.2} {:>12} {p:>5.1} {analytic:>10.4} {measured:>10.4}",
                scheme.name()
            );
            let _ = writeln!(csv, "{alpha},{},{p},{analytic},{measured}", scheme.name());
        }
        let _ = writeln!(
            text,
            "        (α₂={alpha:.2} → α₃={:.3}, α₅={:.3})",
            alpha_k(alpha, 3),
            alpha_k(alpha, 5)
        );
    }

    let _ = writeln!(text, "\nclock trade (equal normal-processing performance):");
    let mut clock_csv = String::from("alpha,beta,clock_ratio,power_ratio\n");
    for &alpha in &[0.5, 0.65, 0.8, 0.95] {
        let params = Params::with_beta(alpha, 0.1, 20);
        let ratio = equal_performance_clock_ratio(&params);
        let power = dynamic_power_ratio(ratio);
        let _ = writeln!(
            text,
            "  α={alpha:.2}: f_smt/f_conv = {ratio:.3}, dynamic power ratio ≈ {power:.3}"
        );
        let _ = writeln!(clock_csv, "{alpha},0.1,{ratio},{power}");
    }
    Report {
        id: "E13",
        title: "§5 outlook — boosted multi-thread recovery and clock scaling",
        text,
        data: vec![
            ("boosted_gains.csv".into(), csv),
            ("clock_trade.csv".into(), clock_csv),
        ],
        metrics: Default::default(),
        spans: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_matches_analytic_within_integral_rounding() {
        let r = report();
        for line in r.data[0].1.lines().skip(1) {
            let f: Vec<&str> = line.split(',').collect();
            let analytic: f64 = f[3].parse().unwrap();
            let measured: f64 = f[4].parse().unwrap();
            assert!((analytic - measured).abs() / analytic < 0.02, "{line}");
        }
    }

    #[test]
    fn clock_ratio_saves_power() {
        let r = report();
        for line in r.data[1].1.lines().skip(1) {
            let f: Vec<&str> = line.split(',').collect();
            let ratio: f64 = f[2].parse().unwrap();
            let power: f64 = f[3].parse().unwrap();
            assert!(ratio < 1.0, "{line}");
            assert!(power < ratio, "cubing helps: {line}");
        }
    }

    #[test]
    fn boost3_with_perfect_pick_beats_two_thread_predictive() {
        // more parallel roll-forward at modest extra contention
        let params = Params::with_beta(0.65, 0.1, 20);
        let b3 = gbar_boost3_exact(&params, 1.0);
        let p2 = gbar_corr_exact(&params, 1.0);
        // the 3-thread scheme retains detection during roll-forward yet
        // approaches the predictive scheme's progress
        assert!(b3 > 0.8 * p2, "b3={b3} p2={p2}");
    }
}
