//! E1 — Eq. (4): normal-processing speedup `G_round(α, β)`.
//!
//! Three columns per (α, β): the exact closed form, the `1/α`
//! approximation, and the **measured** ratio of the abstract engine's
//! fault-free round times. The measured column must match the exact
//! closed form to machine precision — the engine *is* the model.

use crate::Report;
use std::fmt::Write as _;
use vds_analytic::timing;
use vds_analytic::Params;
use vds_core::abstract_vds::{run, AbstractConfig};
use vds_core::{FaultModel, Scheme};

/// Measured fault-free round-time ratio conventional/SMT at (α, β).
pub fn measured_g_round(alpha: f64, beta: f64, rounds: u64) -> f64 {
    let params = Params::with_beta(alpha, beta, 20);
    let conv = run(
        &AbstractConfig::new(params, Scheme::Conventional),
        FaultModel::None,
        rounds,
        1,
    );
    let smt = run(
        &AbstractConfig::new(params, Scheme::SmtProbabilistic),
        FaultModel::None,
        rounds,
        1,
    );
    conv.total_time / smt.total_time
}

/// Regenerate the Eq. (4) table.
pub fn report(rounds: u64) -> Report {
    let betas = [0.0, 0.05, 0.1, 0.2];
    let alphas = [0.5, 0.55, 0.6, 0.65, 0.7, 0.8, 0.9, 1.0];
    let mut text = String::new();
    let mut csv = String::from("alpha,beta,exact,approx,measured\n");
    let _ = writeln!(
        text,
        "{:>6} {:>6} {:>9} {:>9} {:>9}",
        "alpha", "beta", "exact", "1/alpha", "measured"
    );
    for &beta in &betas {
        for &alpha in &alphas {
            let p = Params::with_beta(alpha, beta, 20);
            let exact = timing::g_round_exact(&p);
            let approx = timing::g_round_approx(&p);
            let measured = measured_g_round(alpha, beta, rounds);
            let _ = writeln!(
                text,
                "{alpha:>6.2} {beta:>6.2} {exact:>9.4} {approx:>9.4} {measured:>9.4}"
            );
            let _ = writeln!(csv, "{alpha},{beta},{exact},{approx},{measured}");
        }
    }
    let p = Params::paper_default();
    let _ = writeln!(
        text,
        "\npaper operating point (α=0.65, β=0.1): G_round = {:.3} (≈ 1/α = {:.3})",
        timing::g_round_exact(&p),
        timing::g_round_approx(&p)
    );
    Report {
        id: "E1",
        title: "Eq. (4) — normal-processing speedup of the SMT VDS",
        text,
        data: vec![("round_gain.csv".into(), csv)],
        metrics: Default::default(),
        spans: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_equals_exact() {
        for &(a, b) in &[(0.5, 0.0), (0.65, 0.1), (0.9, 0.2)] {
            let p = Params::with_beta(a, b, 20);
            let m = measured_g_round(a, b, 50);
            assert!(
                (m - timing::g_round_exact(&p)).abs() < 1e-9,
                "alpha={a} beta={b}: {m}"
            );
        }
    }

    #[test]
    fn report_renders() {
        let r = report(20);
        assert!(r.text.contains("G_round"));
        assert_eq!(r.data.len(), 1);
        assert!(r.data[0].1.lines().count() > 30);
    }
}
