//! # vds-bench — the figure-regeneration harness
//!
//! One module per experiment in DESIGN.md's index (E1–E18), each built
//! around a `report()` function that regenerates the corresponding paper
//! artefact (equation curve, figure surface, timeline, flow chart) and
//! returns it as printable text plus machine-readable CSV/TSV blocks.
//! The `exp_*` binaries are thin wrappers; integration tests call the
//! same functions with scaled-down parameters.
//!
//! | module | paper artefact |
//! |--------|----------------|
//! | [`e01_round_gain`] | Eq. (4) normal-processing speedup |
//! | [`e02_timelines`] | Figure 1 execution models |
//! | [`e03_flowcharts`] | Figures 2–3 recovery flow charts |
//! | [`e04_det_rollforward`] | Eqs. (6)–(7), α < 0.723 threshold |
//! | [`e05_prob_rollforward`] | Eq. (8) |
//! | [`e06_fig4`] / [`e07_fig5`] | Figures 4 and 5 gain surfaces |
//! | [`e08_gmax`] | the G_max limit and the headline 1.38 |
//! | [`e09_alpha`] | measured α on the SMT simulator |
//! | [`e10_coverage`] | fault-injection coverage campaign |
//! | [`e11_prediction`] | §4/§5 predictor accuracy → gain |
//! | [`e12_checkpoint`] | §2.2 interval trade-off |
//! | [`e13_multithread`] | §5 boosted variants + clock scaling |
//! | [`e14_ablation`] | design-choice ablations (fetch policy, cache, diversity) |
//! | [`e15_alpha_sweep`] | sweep-backed α-sensitivity of measured G_round |
//! | [`e16_heatmap`] | sweep-backed s × scheme heatmap under faults |
//! | [`e17_alpha_ledger`] | α-decomposition: per-cycle interference ledger |
//! | [`e18_vm_duplex`] | bytecode-VM programs duplexed: gain + coverage |

pub mod e01_round_gain;
pub mod e02_timelines;
pub mod e03_flowcharts;
pub mod e04_det_rollforward;
pub mod e05_prob_rollforward;
pub mod e06_fig4;
pub mod e07_fig5;
pub mod e08_gmax;
pub mod e09_alpha;
pub mod e10_coverage;
pub mod e11_prediction;
pub mod e12_checkpoint;
pub mod e13_multithread;
pub mod e14_ablation;
pub mod e15_alpha_sweep;
pub mod e16_heatmap;
pub mod e17_alpha_ledger;
pub mod e18_vm_duplex;
pub mod live;
pub mod perf;
pub mod registry;

pub use registry::{registry, Experiment, Params as ExpParams};

/// A rendered experiment: headline text plus named data blocks.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment id, e.g. `"E6"`.
    pub id: &'static str,
    /// What it reproduces.
    pub title: &'static str,
    /// Human-readable summary lines.
    pub text: String,
    /// `(name, csv/tsv content)` data blocks for external plotting.
    pub data: Vec<(String, String)>,
    /// Metrics collected while the experiment ran (deterministic content
    /// for a fixed seed; empty for purely analytic experiments that
    /// record nothing).
    pub metrics: vds_obs::Registry,
    /// Profiler spans collected while the experiment ran (empty for
    /// analytic experiments). Exported to Chrome trace JSON by the CLI's
    /// `--metrics` path.
    pub spans: vds_obs::SpanSet,
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "==== {} — {} ====", self.id, self.title)?;
        writeln!(f, "{}", self.text)?;
        for (name, block) in &self.data {
            writeln!(f, "---- data: {name} ----")?;
            writeln!(f, "{block}")?;
        }
        if !self.metrics.is_empty() {
            writeln!(f, "---- metrics ----")?;
            write!(f, "{}", self.metrics)?;
        }
        Ok(())
    }
}
