//! E12 — the check/checkpoint interval trade-off (§2.2, following
//! Ziv & Bruck).
//!
//! The paper's design rationale: compare states *every round* (cheap,
//! `t'`), checkpoint only every `s` rounds (expensive stable-storage
//! write). This experiment sweeps `s` under a stochastic fault load with
//! a non-zero checkpoint cost and reports throughput — small `s` wastes
//! time writing checkpoints, large `s` pays long replays and roll-backs;
//! the optimum sits in between.

use crate::Report;
use std::fmt::Write as _;
use vds_analytic::Params;
use vds_core::abstract_vds::{run, AbstractConfig};
use vds_core::{FaultModel, Scheme};

/// Throughput versus `s` for the given fault probability and checkpoint
/// cost.
pub fn sweep(
    scheme: Scheme,
    q: f64,
    checkpoint_cost: f64,
    rounds: u64,
    svals: &[u32],
) -> Vec<(u32, f64)> {
    svals
        .iter()
        .map(|&s| {
            let params = Params::with_beta(0.65, 0.1, s);
            let mut cfg = AbstractConfig::new(params, scheme);
            cfg.checkpoint_cost = checkpoint_cost;
            // average over seeds for a stable estimate
            let mut acc = 0.0;
            let reps = 8;
            for seed in 0..reps {
                let r = run(&cfg, FaultModel::PerRound { q }, rounds, 100 + seed);
                acc += r.throughput();
            }
            (s, acc / reps as f64)
        })
        .collect()
}

/// Regenerate the trade-off curves.
pub fn report(rounds: u64) -> Report {
    let svals = [1u32, 2, 4, 8, 16, 32, 64, 128];
    let mut text = String::new();
    let mut csv = String::from("scheme,q,ckpt_cost,s,throughput\n");
    for &(q, cost) in &[(0.01, 5.0), (0.03, 5.0), (0.01, 20.0)] {
        let _ = writeln!(
            text,
            "per-round fault probability q={q}, checkpoint cost={cost} (in units of t):"
        );
        for scheme in [Scheme::Conventional, Scheme::SmtProbabilistic] {
            let curve = sweep(scheme, q, cost, rounds, &svals);
            let best = curve
                .iter()
                .copied()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            let _ = write!(text, "  {:<14}", scheme.name());
            for (s, thr) in &curve {
                let _ = write!(text, " s={s}:{thr:.3}");
                let _ = writeln!(csv, "{},{q},{cost},{s},{thr}", scheme.name());
            }
            let _ = writeln!(text, "   → optimum s={} ({:.3})", best.0, best.1);
        }
    }
    let _ = writeln!(
        text,
        "\nthe optimum lies strictly inside the sweep: frequent checks, infrequent checkpoints"
    );
    // closed-form cross-check (Young-style square-root law)
    let _ = writeln!(text, "\nclosed-form optima (vds-analytic::checkpointing):");
    let w = vds_analytic::checkpointing::RecoveryWeights::conventional();
    for &(q, cost) in &[(0.01, 5.0), (0.03, 5.0), (0.01, 20.0)] {
        let params = Params::with_beta(0.65, 0.1, 20);
        let s_star = vds_analytic::checkpointing::optimal_interval_int(&params, cost, q, w);
        let _ = writeln!(text, "  q={q}, C={cost}: s* = {s_star}");
    }
    Report {
        id: "E12",
        title: "Checkpoint-interval trade-off under faults",
        text,
        data: vec![("checkpoint_tradeoff.csv".into(), csv)],
        metrics: Default::default(),
        spans: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extremes_are_suboptimal() {
        let svals = [1u32, 2, 4, 8, 16, 32, 64, 128];
        let curve = sweep(Scheme::SmtProbabilistic, 0.02, 10.0, 600, &svals);
        let best = curve
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        let first = curve.first().unwrap();
        let last = curve.last().unwrap();
        assert!(best.1 > first.1, "s=1 should lose to the optimum");
        assert!(best.1 > last.1, "s=128 should lose to the optimum");
        assert!(best.0 > 1 && best.0 < 128, "optimum at s={}", best.0);
    }

    #[test]
    fn closed_form_optimum_agrees_with_simulation_to_a_factor() {
        // The square-root law and the stochastic engine should place the
        // optimum in the same region (within ~2× — the closed form folds
        // rollback dynamics into one constant).
        let w = vds_analytic::checkpointing::RecoveryWeights::conventional();
        let params = Params::with_beta(0.65, 0.1, 20);
        let (q, cost) = (0.02, 10.0);
        let s_star = vds_analytic::checkpointing::optimal_interval_int(&params, cost, q, w) as f64;
        let svals = [2u32, 4, 8, 16, 32, 64, 128];
        let curve = sweep(Scheme::Conventional, q, cost, 600, &svals);
        let s_sim = curve
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap()
            .0 as f64;
        let ratio = s_star.max(s_sim) / s_star.min(s_sim);
        assert!(
            ratio <= 2.6,
            "closed form s*={s_star} vs simulated {s_sim} (ratio {ratio})"
        );
    }

    #[test]
    fn higher_fault_rate_prefers_smaller_s() {
        let svals = [2u32, 8, 32, 128];
        let low = sweep(Scheme::SmtProbabilistic, 0.005, 10.0, 600, &svals);
        let high = sweep(Scheme::SmtProbabilistic, 0.08, 10.0, 600, &svals);
        let argmax = |c: &[(u32, f64)]| {
            c.iter()
                .copied()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap()
                .0
        };
        assert!(
            argmax(&high) <= argmax(&low),
            "high-rate optimum {} vs low-rate {}",
            argmax(&high),
            argmax(&low)
        );
    }
}
