//! E2 — Figure 1: execution models of a VDS on a conventional and on a
//! multithreaded processor, as recorded timelines.
//!
//! The engine records every round, context switch, comparison, retry and
//! roll-forward span; the ASCII Gantt rendering reproduces the figure,
//! and the TSV block carries the raw spans for external plotting.

use crate::Report;
use std::fmt::Write as _;
use vds_analytic::Params;
use vds_core::abstract_vds::{run_recorded, AbstractConfig};
use vds_core::{FaultModel, Scheme, Victim};

/// Produce both timelines with a fault at round `fault_round`.
pub fn report(fault_round: u32, rounds: u64, width: usize) -> Report {
    let params = Params::paper_default();
    let fm = FaultModel::OneShot {
        round: fault_round,
        victim: Victim::V2,
    };
    let mut text = String::new();
    let mut data = Vec::new();
    let mut metrics = vds_obs::Registry::new();
    let mut spans = vds_obs::SpanSet::default();
    for (name, scheme) in [
        ("conventional (Figure 1a)", Scheme::Conventional),
        (
            "multithreaded, probabilistic roll-forward (Figure 1b)",
            Scheme::SmtProbabilistic,
        ),
    ] {
        let mut cfg = AbstractConfig::new(params, scheme);
        cfg.record_timeline = true;
        let (r, rec) = run_recorded(&cfg, fm, rounds, 1);
        let (reg, _trace, sp) = rec.into_parts();
        metrics.merge(&reg.prefixed(scheme.name()));
        spans.extend_from(&sp);
        let tl = r.timeline.expect("timeline recorded");
        let _ = writeln!(
            text,
            "{name}: total={:.2}, committed={} rounds, fault detected once={}",
            r.total_time,
            r.committed_rounds,
            r.detections == 1
        );
        let _ = writeln!(text, "{}", tl.render_ascii(width));
        data.push((format!("timeline_{}.tsv", scheme.name()), tl.to_tsv()));
    }
    Report {
        id: "E2",
        title: "Figure 1 — execution models with recovery",
        text,
        data,
        metrics,
        spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timelines_show_both_architectures() {
        let r = report(4, 10, 100);
        assert!(r.text.contains("Figure 1a"));
        assert!(r.text.contains("Figure 1b"));
        // conventional rendering has one lane, SMT two
        assert_eq!(r.data.len(), 2);
        let conv = &r.data[0].1;
        let smt = &r.data[1].1;
        assert!(conv.contains("context-switch"));
        assert!(smt.contains("roll-forward"));
        assert!(!conv.contains("roll-forward"));
    }

    #[test]
    fn smt_timeline_is_shorter() {
        let r = report(4, 12, 80);
        // extract totals from the text: conventional line comes first
        let totals: Vec<f64> = r
            .text
            .lines()
            .filter_map(|l| {
                l.split("total=")
                    .nth(1)?
                    .split(',')
                    .next()?
                    .parse::<f64>()
                    .ok()
            })
            .collect();
        assert_eq!(totals.len(), 2);
        assert!(
            totals[1] < totals[0],
            "SMT {} vs conv {}",
            totals[1],
            totals[0]
        );
    }
}
