//! E4 — Eqs. (6)–(7): the deterministic roll-forward gain.
//!
//! Regenerates the per-round gain curve `G_det(i)` (exact vs. the paper's
//! piecewise approximation vs. engine-measured) and the average `Ḡ_det`
//! as a function of α, including the paper's α < 0.723 profitability
//! threshold.

use crate::Report;
use std::fmt::Write as _;
use vds_analytic::rollforward;
use vds_analytic::Params;
use vds_core::abstract_vds::AbstractConfig;
use vds_core::gain::{average_incident_gain, incident_gain};
use vds_core::Scheme;

/// Regenerate both panels.
pub fn report() -> Report {
    let params = Params::paper_default();
    let mut text = String::new();
    let mut per_i = String::from("i,exact,approx,measured\n");
    let _ = writeln!(
        text,
        "G_det(i) at α=0.65, β=0.1, s=20   (measured = abstract engine, integral progress)"
    );
    let _ = writeln!(
        text,
        "{:>3} {:>8} {:>8} {:>8}",
        "i", "exact", "approx", "meas"
    );
    let cfg = AbstractConfig::new(params, Scheme::SmtDeterministic);
    for i in 1..=params.s {
        let exact = rollforward::g_det_exact(&params, i);
        let approx = rollforward::g_det_approx(&params, i);
        let measured = incident_gain(&cfg, i, None);
        let _ = writeln!(text, "{i:>3} {exact:>8.4} {approx:>8.4} {measured:>8.4}");
        let _ = writeln!(per_i, "{i},{exact},{approx},{measured}");
    }

    let mut by_alpha = String::from("alpha,gbar_exact,gbar_approx,gbar_measured\n");
    let _ = writeln!(text, "\nḠ_det versus α (β=0.1, s=20):");
    for k in 0..=10 {
        let alpha = 0.5 + 0.05 * f64::from(k);
        let p = Params::with_beta(alpha, 0.1, 20);
        let cfg = AbstractConfig::new(p, Scheme::SmtDeterministic);
        let exact = rollforward::gbar_det_exact(&p);
        let approx = rollforward::gbar_det_approx(&p);
        let measured = average_incident_gain(&cfg, 0.5);
        let _ = writeln!(
            text,
            "  α={alpha:.2}: exact={exact:.4} approx={approx:.4} measured={measured:.4}"
        );
        let _ = writeln!(by_alpha, "{alpha},{exact},{approx},{measured}");
    }
    let thr = rollforward::det_alpha_threshold();
    let _ = writeln!(
        text,
        "\nprofitability threshold: Ḡ_det > 1 for α < {thr:.4} (paper: 0.723)"
    );
    Report {
        id: "E4",
        title: "Eqs. (6)–(7) — deterministic roll-forward gain",
        text,
        data: vec![
            ("det_gain_by_round.csv".into(), per_i),
            ("det_gain_by_alpha.csv".into(), by_alpha),
        ],
        metrics: Default::default(),
        spans: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_in_report() {
        let r = report();
        assert!(r.text.contains("0.723"));
        assert_eq!(r.data.len(), 2);
        assert_eq!(r.data[0].1.lines().count(), 21); // header + 20 rounds
    }

    #[test]
    fn measured_tracks_exact_within_rounding() {
        // The engine floors i/4; the largest deviation from the
        // real-valued exact curve is bounded by one round's catch-up
        // value over the recovery time.
        let params = Params::paper_default();
        let cfg = AbstractConfig::new(params, Scheme::SmtDeterministic);
        for i in 1..=20 {
            let exact = rollforward::g_det_exact(&params, i);
            let measured = incident_gain(&cfg, i, None);
            assert!(measured <= exact + 1e-9, "flooring can only lose: i={i}");
            assert!((exact - measured) < 0.45, "i={i}: {exact} vs {measured}");
        }
    }
}
