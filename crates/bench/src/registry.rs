//! The experiment registry: every paper artefact behind one uniform API.
//!
//! Each experiment module keeps its typed `report(...)` function; this
//! module wraps them in the [`Experiment`] trait so callers (the `vds`
//! CLI, `exp_all`, integration tests) can enumerate and run them without
//! hard-coding the list. [`Params`] carries the shared size/seed/worker
//! knobs; experiments map them onto their own arguments and fall back to
//! their historical defaults when a knob is absent.

use crate::Report;

/// Shared experiment parameters.
///
/// `rounds` is the generic size knob — rounds, trials or samples,
/// whatever the experiment scales by. `None` selects each experiment's
/// default (the sizes the CLI has always used).
#[derive(Debug, Clone)]
pub struct Params {
    /// Size knob (rounds / trials / samples); `None` = experiment default.
    pub rounds: Option<u64>,
    /// Seed override for seeded experiments; `None` = experiment default.
    pub seed: Option<u64>,
    /// Worker threads for campaign-style experiments.
    pub workers: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            rounds: None,
            seed: None,
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }
}

impl Params {
    /// `rounds` with a per-experiment default.
    fn rounds_or(&self, default: u64) -> u64 {
        self.rounds.unwrap_or(default)
    }
}

/// A runnable experiment.
pub trait Experiment: Sync {
    /// Stable identifier, e.g. `"E10"`.
    fn id(&self) -> &'static str;
    /// What the experiment reproduces.
    fn title(&self) -> &'static str;
    /// Run it and render the report.
    fn run(&self, p: &Params) -> Report;
}

/// Attach the standard per-report metrics every experiment exports.
fn finalize(mut r: Report) -> Report {
    r.metrics.count("report.text_bytes", r.text.len() as u64);
    r.metrics.count("report.data_blocks", r.data.len() as u64);
    r.metrics.count(
        "report.data_bytes",
        r.data.iter().map(|(_, b)| b.len() as u64).sum(),
    );
    r
}

macro_rules! experiment {
    ($struct_:ident, $id:literal, $title:literal, |$p:ident| $body:expr) => {
        struct $struct_;
        impl Experiment for $struct_ {
            fn id(&self) -> &'static str {
                $id
            }
            fn title(&self) -> &'static str {
                $title
            }
            fn run(&self, $p: &Params) -> Report {
                finalize($body)
            }
        }
    };
}

experiment!(
    E01,
    "E1",
    "Eq. (4) — normal-processing speedup of the SMT VDS",
    |p| crate::e01_round_gain::report(p.rounds_or(200))
);
experiment!(
    E02,
    "E2",
    "Figure 1 — execution models with recovery",
    |p| crate::e02_timelines::report(8, p.rounds_or(24), 140)
);
experiment!(
    E03,
    "E3",
    "Figures 2–3 — recovery flow charts (DOT export)",
    |_p| crate::e03_flowcharts::report()
);
experiment!(
    E04,
    "E4",
    "Eqs. (6)–(7) — deterministic roll-forward gain",
    |_p| crate::e04_det_rollforward::report()
);
experiment!(
    E05,
    "E5",
    "Eq. (8) — probabilistic roll-forward gain versus pick accuracy",
    |_p| crate::e05_prob_rollforward::report()
);
experiment!(
    E06,
    "E6",
    "Figure 4 — Ḡ_corr(α, β) for p = 0.5",
    |_p| crate::e06_fig4::report()
);
experiment!(
    E07,
    "E7",
    "Figure 5 — Ḡ_corr(α, β) for p = 1.0",
    |_p| crate::e07_fig5::report()
);
experiment!(
    E08,
    "E8",
    "G_max — limit of the expected recovery gain",
    |_p| crate::e08_gmax::report()
);
experiment!(
    E09,
    "E9",
    "Measured SMT contention factor α on the simulated machine",
    |p| crate::e09_alpha::report(p.rounds_or(3) as u32)
);
experiment!(
    E10,
    "E10",
    "Fault-injection coverage on the micro platform",
    |p| crate::e10_coverage::report(p.rounds_or(200), p.workers)
);
experiment!(
    E11,
    "E11",
    "Fault-version prediction accuracy and its recovery-gain value",
    |p| crate::e11_prediction::report(p.rounds_or(20_000))
);
experiment!(
    E12,
    "E12",
    "Checkpoint-interval trade-off under faults",
    |p| crate::e12_checkpoint::report(p.rounds_or(1_500))
);
experiment!(
    E13,
    "E13",
    "§5 outlook — boosted multi-thread recovery and clock scaling",
    |_p| crate::e13_multithread::report()
);
experiment!(
    E14,
    "E14",
    "Ablations — fetch policy, cache pressure, diversity transforms",
    |p| crate::e14_ablation::report(p.rounds_or(40))
);
experiment!(
    E15,
    "E15",
    "Measured α-sensitivity of G_round (sweep-backed)",
    |p| crate::e15_alpha_sweep::report(p.rounds_or(1_000), p.workers, p.seed.unwrap_or(1))
);
experiment!(
    E16,
    "E16",
    "s × scheme heatmap under stochastic faults (sweep-backed)",
    |p| crate::e16_heatmap::report(p.rounds_or(1_000), p.workers, p.seed.unwrap_or(1))
);
experiment!(
    E17,
    "E17",
    "α-decomposition: per-cycle SMT interference ledger",
    |p| crate::e17_alpha_ledger::report(p.rounds_or(2) as u32)
);
experiment!(
    E18,
    "E18",
    "Real programs under duplex: the bytecode-VM workload",
    |p| crate::e18_vm_duplex::report(p.rounds_or(24), p.seed.unwrap_or(1))
);

/// All experiments, in id order.
pub fn registry() -> &'static [&'static dyn Experiment] {
    const REGISTRY: &[&'static dyn Experiment] = &[
        &E01, &E02, &E03, &E04, &E05, &E06, &E07, &E08, &E09, &E10, &E11, &E12, &E13, &E14, &E15,
        &E16, &E17, &E18,
    ];
    REGISTRY
}

/// Look an experiment up by id, case-insensitively, accepting both the
/// short (`e1`) and zero-padded (`e01`) spellings.
pub fn find(id: &str) -> Option<&'static dyn Experiment> {
    let wanted = id.trim().trim_start_matches(['e', 'E']);
    let wanted = wanted.trim_start_matches('0');
    registry()
        .iter()
        .copied()
        .find(|e| e.id().trim_start_matches(['e', 'E']) == wanted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_ordered() {
        let ids: Vec<&str> = registry().iter().map(|e| e.id()).collect();
        assert_eq!(ids.len(), 18);
        let mut nums: Vec<u32> = ids
            .iter()
            .map(|i| i.trim_start_matches('E').parse().unwrap())
            .collect();
        let sorted = nums.clone();
        nums.sort_unstable();
        assert_eq!(nums, sorted, "registry not in id order");
        nums.dedup();
        assert_eq!(nums.len(), 18, "duplicate ids");
    }

    #[test]
    fn find_accepts_spelling_variants() {
        for probe in ["e1", "E1", "e01", "E01"] {
            assert_eq!(find(probe).unwrap().id(), "E1", "{probe}");
        }
        assert_eq!(find("e10").unwrap().id(), "E10");
        assert_eq!(find("E014").unwrap().id(), "E14");
        assert_eq!(find("e15").unwrap().id(), "E15");
        assert_eq!(find("E016").unwrap().id(), "E16");
        assert_eq!(find("e17").unwrap().id(), "E17");
        assert_eq!(find("E018").unwrap().id(), "E18");
        assert!(find("e19").is_none());
        assert!(find("bogus").is_none());
    }

    #[test]
    fn run_attaches_standard_metrics() {
        let r = find("e8").unwrap().run(&Params::default());
        assert_eq!(r.id, "E8");
        assert!(r.metrics.counter("report.text_bytes") > 0);
        assert_eq!(r.metrics.counter("report.data_blocks"), r.data.len() as u64);
    }

    #[test]
    fn trait_ids_match_report_ids() {
        // cheap experiments only; the report's own id must agree with the
        // trait's
        let p = Params {
            rounds: Some(5),
            ..Params::default()
        };
        for probe in ["e3", "e4", "e5", "e8", "e13"] {
            let e = find(probe).unwrap();
            assert_eq!(e.run(&p).id, e.id());
        }
    }
}
