//! E5 — Eq. (8): the probabilistic roll-forward gain `Ḡ_prob(p)`.
//!
//! Sweeps the pick accuracy `p` and compares the closed form against the
//! engine's expectation-resolved average; also checks the paper's remark
//! that at `p = 0.5` the probabilistic and deterministic schemes are
//! approximately equal.

use crate::Report;
use std::fmt::Write as _;
use vds_analytic::rollforward;
use vds_analytic::Params;
use vds_core::abstract_vds::AbstractConfig;
use vds_core::gain::average_incident_gain;
use vds_core::Scheme;

/// Regenerate the `Ḡ_prob(p)` curve.
pub fn report() -> Report {
    let params = Params::paper_default();
    let cfg = AbstractConfig::new(params, Scheme::SmtProbabilistic);
    let mut text = String::new();
    let mut csv = String::from("p,gbar_exact,gbar_approx,gbar_measured\n");
    let _ = writeln!(text, "Ḡ_prob(p) at α=0.65, β=0.1, s=20:");
    for k in 0..=10 {
        let p = 0.5 + 0.05 * f64::from(k);
        let exact = rollforward::gbar_prob_exact(&params, p);
        let approx = rollforward::gbar_prob_approx(&params, p);
        let measured = average_incident_gain(&cfg, p);
        let _ = writeln!(
            text,
            "  p={p:.2}: exact={exact:.4} approx={approx:.4} measured={measured:.4}"
        );
        let _ = writeln!(csv, "{p},{exact},{approx},{measured}");
    }
    let det = rollforward::gbar_det_approx(&params);
    let prob_half = rollforward::gbar_prob_approx(&params, 0.5);
    let _ = writeln!(
        text,
        "\np=0.5 cross-check (paper: 'approximately equal values'):\n  Ḡ_det ≈ {det:.4}, Ḡ_prob(0.5) ≈ {prob_half:.4}, relative difference {:.2}%",
        100.0 * (det - prob_half).abs() / det
    );
    Report {
        id: "E5",
        title: "Eq. (8) — probabilistic roll-forward gain versus pick accuracy",
        text,
        data: vec![("prob_gain_by_p.csv".into(), csv)],
        metrics: Default::default(),
        spans: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn curve_is_monotone_in_p() {
        let r = super::report();
        let vals: Vec<f64> = r.data[0]
            .1
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(3).unwrap().parse().unwrap())
            .collect();
        assert_eq!(vals.len(), 11);
        for w in vals.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "not monotone: {w:?}");
        }
    }

    #[test]
    fn det_and_prob_agree_at_p_half() {
        let r = super::report();
        assert!(r.text.contains("approximately equal"));
    }
}
