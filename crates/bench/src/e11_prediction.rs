//! E11 — §4/§5: fault-version predictors and their end-to-end value.
//!
//! Measures each predictor's accuracy `p` on three fault environments
//! (i.i.d., persistent/process-variation, periodic) and feeds the
//! measured `p` into the exact Eq. (13) gain — the quantitative version
//! of the paper's outlook that "the prediction probability p could be
//! further improved using techniques similar to branch prediction".

use crate::Report;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use vds_analytic::predictive::gbar_corr_exact;
use vds_analytic::Params;
use vds_predictor::eval::measure_accuracy;
use vds_predictor::predictors::{
    FaultPredictor, LastOutcome, RandomGuess, SaturatingCounter, TwoLevel,
};
use vds_predictor::streams::{FaultStream, IidStream, PeriodicStream, PersistentStream};

fn predictors() -> Vec<Box<dyn FaultPredictor>> {
    vec![
        Box::new(RandomGuess::new(SmallRng::seed_from_u64(42))),
        Box::new(LastOutcome::default()),
        Box::new(SaturatingCounter::default()),
        Box::new(TwoLevel::new(6)),
    ]
}

fn streams() -> Vec<(&'static str, Box<dyn FaultStream>)> {
    vec![
        ("iid(0.5)", Box::new(IidStream { bias: 0.5 })),
        ("iid(0.8)", Box::new(IidStream { bias: 0.8 })),
        ("persistent(0.9)", Box::new(PersistentStream::new(0.9))),
        ("alternating", Box::new(PeriodicStream::alternating())),
    ]
}

/// Measure the accuracy table and the resulting gains.
pub fn report(n: u64) -> Report {
    let params = Params::paper_default();
    let mut text = String::new();
    let mut csv = String::from("stream,predictor,p,gain\n");
    let _ = writeln!(
        text,
        "accuracy p and resulting Ḡ_corr (exact Eq. 13, α=0.65, β=0.1, s=20):"
    );
    let _ = writeln!(
        text,
        "{:>18} {:>20} {:>7} {:>7}",
        "fault stream", "predictor", "p", "gain"
    );
    for (sname, _) in streams() {
        for pred in predictors().iter_mut() {
            // fresh stream per measurement (streams are stateful)
            let mut stream: Box<dyn FaultStream> = match sname {
                "iid(0.5)" => Box::new(IidStream { bias: 0.5 }),
                "iid(0.8)" => Box::new(IidStream { bias: 0.8 }),
                "persistent(0.9)" => Box::new(PersistentStream::new(0.9)),
                _ => Box::new(PeriodicStream::alternating()),
            };
            let acc = measure_accuracy(pred.as_mut(), stream.as_mut(), n, 200, 7);
            let gain = gbar_corr_exact(&params, acc.p);
            let _ = writeln!(
                text,
                "{:>18} {:>20} {:>7.3} {:>7.3}",
                sname,
                pred.name(),
                acc.p,
                gain
            );
            let _ = writeln!(csv, "{sname},{},{},{gain}", pred.name(), acc.p);
        }
    }
    let _ = writeln!(
        text,
        "\nreference gains: p=0.5 → {:.3}, p=1.0 → {:.3}",
        gbar_corr_exact(&params, 0.5),
        gbar_corr_exact(&params, 1.0)
    );
    Report {
        id: "E11",
        title: "Fault-version prediction accuracy and its recovery-gain value",
        text,
        data: vec![("prediction.csv".into(), csv)],
        metrics: Default::default(),
        spans: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_rows(r: &Report) -> Vec<(String, String, f64, f64)> {
        r.data[0]
            .1
            .lines()
            .skip(1)
            .map(|l| {
                let f: Vec<&str> = l.split(',').collect();
                (
                    f[0].to_string(),
                    f[1].to_string(),
                    f[2].parse().unwrap(),
                    f[3].parse().unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn history_predictors_beat_random_on_clustered_faults() {
        let rows = parse_rows(&report(5_000));
        let get = |s: &str, p: &str| -> f64 {
            rows.iter()
                .find(|(rs, rp, _, _)| rs == s && rp == p)
                .map(|(_, _, pv, _)| *pv)
                .unwrap()
        };
        let rand_p = get("persistent(0.9)", "random");
        let last_p = get("persistent(0.9)", "last-outcome");
        assert!(last_p > rand_p + 0.3, "last {last_p} vs random {rand_p}");
        // two-level dominates on the alternating pattern
        let tl = get("alternating", "two-level");
        let sc = get("alternating", "saturating-counter");
        assert!(tl > 0.95 && sc < 0.8, "tl={tl} sc={sc}");
    }

    #[test]
    fn gain_increases_with_p() {
        let rows = parse_rows(&report(3_000));
        for w in rows.windows(2) {
            if w[0].0 == w[1].0 && w[1].2 > w[0].2 {
                assert!(w[1].3 >= w[0].3, "gain not monotone in p: {w:?}");
            }
        }
    }
}
