//! E3 — Figures 2 and 3: the recovery flow charts, exported as Graphviz
//! DOT, plus a reachability audit tying every chart edge to engine
//! behaviour.

use crate::Report;
use std::fmt::Write as _;
use vds_core::flowchart;
use vds_core::Scheme;

/// Render the flow charts of all schemes.
pub fn report() -> Report {
    let mut text = String::new();
    let mut data = Vec::new();
    for scheme in Scheme::ALL {
        let fc = flowchart::for_scheme(scheme);
        let reach = fc.reachable();
        let _ = writeln!(
            text,
            "{:<14} {:>2} states, {:>2} transitions, all reachable: {}",
            scheme.name(),
            fc.nodes.len(),
            fc.edges.len(),
            fc.nodes.iter().all(|n| reach.contains(n.id))
        );
        data.push((format!("flowchart_{}.dot", scheme.name()), fc.to_dot()));
    }
    Report {
        id: "E3",
        title: "Figures 2–3 — recovery flow charts (DOT export)",
        text,
        data,
        metrics: Default::default(),
        spans: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_schemes_exported() {
        let r = super::report();
        assert_eq!(r.data.len(), 6);
        assert!(r.data.iter().all(|(_, dot)| dot.starts_with("digraph")));
        assert!(r.text.lines().all(|l| l.contains("all reachable: true")));
    }
}
