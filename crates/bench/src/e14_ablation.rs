//! E14 — ablation studies of the design choices DESIGN.md calls out.
//!
//! * **A1 — fetch policy**: does the thread-priority policy (round-robin
//!   vs ICOUNT) move α?
//! * **A2 — D-cache geometry**: shared-cache pressure is the main α
//!   driver for memory-bound pairs; sweep the cache size.
//! * **A3 — diversity transforms**: which transformation actually makes
//!   *permanent* functional-unit faults detectable? Runs version pairs
//!   (base vs transformed) with a stuck-at fault armed and measures the
//!   probability that their states diverge within a round budget.

use crate::Report;
use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng};
use std::fmt::Write as _;
use vds_core::workload;
use vds_diversity::transform::{
    CommutativeSwap, ImmediateRewrite, NopPadding, RegisterPermutation, Transform,
};
use vds_smtsim::alpha;
use vds_smtsim::cache::CacheConfig;
use vds_smtsim::core::{Core, CoreConfig, FetchPolicy, RunOutcome, ThreadId};
use vds_smtsim::kernels;
use vds_smtsim::program::Program;

/// A1: α under both fetch policies for a few kernel pairs.
pub fn fetch_policy_ablation(rounds: u32) -> Vec<(String, f64, f64)> {
    let pairs = [
        (kernels::crc(64, rounds), kernels::control(64, rounds)),
        (kernels::matmul(6, rounds), kernels::matmul(6, rounds)),
        (kernels::vecsum(128, rounds), kernels::bsort(16, rounds)),
    ];
    pairs
        .iter()
        .map(|(a, b)| {
            let rr = CoreConfig {
                fetch_policy: FetchPolicy::RoundRobin,
                ..CoreConfig::default()
            };
            let ic = CoreConfig {
                fetch_policy: FetchPolicy::ICount,
                ..CoreConfig::default()
            };
            (
                format!("{}+{}", a.name, b.name),
                alpha::measure(&rr, a, b)
                    .expect("ablation kernels complete")
                    .alpha,
                alpha::measure(&ic, a, b)
                    .expect("ablation kernels complete")
                    .alpha,
            )
        })
        .collect()
}

/// A2: α of the cache-thrashing pointer-chase self-pair versus shared
/// D-cache capacity (in words).
pub fn cache_ablation(rounds: u32) -> Vec<(usize, f64)> {
    [
        CacheConfig {
            sets: 16,
            ways: 1,
            line_words: 4,
        },
        CacheConfig {
            sets: 64,
            ways: 2,
            line_words: 4,
        },
        CacheConfig {
            sets: 256,
            ways: 2,
            line_words: 4,
        },
        CacheConfig {
            sets: 256,
            ways: 4,
            line_words: 4,
        },
    ]
    .iter()
    .map(|&dcache| {
        let cfg = CoreConfig {
            dcache,
            ..CoreConfig::default()
        };
        let k = kernels::pchase(512, 256, rounds);
        (
            dcache.capacity_words(),
            alpha::measure(&cfg, &k, &k)
                .expect("ablation kernels complete")
                .alpha,
        )
    })
    .collect()
}

/// Outcome of one duplex run under a shared permanent fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DuplexOutcome {
    /// The fault was *detected*: the versions' states diverged at some
    /// round boundary, or at least one version trapped/hung (fail-stop).
    pub detected: bool,
    /// The duplex emitted a wrong final state with no detection — the
    /// dependability failure mode the paper's diversity requirement
    /// exists to prevent.
    pub silent_wrong: bool,
}

/// Run `base` and `variant` as a (time-shared) duplex under the same
/// stuck-at fault, comparing state windows at every round boundary, and
/// classify the outcome. `clean` is the fault-free reference state after
/// `max_rounds`.
fn duplex_under_fault(
    base: &Program,
    variant: &Program,
    clean_final: &[u32],
    fault: vds_smtsim::core::FuFault,
    max_rounds: u32,
) -> DuplexOutcome {
    let run_round = |core: &mut Core, t: ThreadId| -> Option<Vec<u32>> {
        match core.run_until_all_blocked(2_000_000) {
            RunOutcome::AllYielded => {
                let img = core.thread(t).dmem.clone();
                core.resume(t);
                Some(img)
            }
            _ => None, // trap or hang: fail-stop, always detectable
        }
    };
    let w = workload::STATE_WINDOW;
    let win = |img: &[u32]| img[w.start as usize..w.end as usize].to_vec();
    let mut ca = Core::new(CoreConfig::single_threaded());
    let ta = ca.add_thread(base, workload::DMEM_WORDS);
    ca.inject_fu_fault(fault);
    let mut cb = Core::new(CoreConfig::single_threaded());
    let tb = cb.add_thread(variant, workload::DMEM_WORDS);
    cb.inject_fu_fault(fault);
    let mut last = Vec::new();
    for _ in 0..max_rounds {
        let (ia, ib) = match (run_round(&mut ca, ta), run_round(&mut cb, tb)) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return DuplexOutcome {
                    detected: true,
                    silent_wrong: false,
                }
            }
        };
        if win(&ia) != win(&ib) {
            return DuplexOutcome {
                detected: true,
                silent_wrong: false,
            };
        }
        last = win(&ia);
    }
    DuplexOutcome {
        detected: false,
        silent_wrong: last != win(clean_final),
    }
}

/// A3: per transformation, the probability that a random permanent fault
/// is detected, and the probability it slips through as silent wrong
/// output. Returns `(name, detected_rate, silent_wrong_rate)` rows.
/// A named generator of diversified program variants.
type VariantGen = (String, Box<dyn Fn(&mut SmallRng) -> Program>);

pub fn diversity_ablation(trials: u64, max_rounds: u32) -> Vec<(String, f64, f64)> {
    let base = workload::build(1_000_000);
    let variants: Vec<VariantGen> = vec![
        (
            "identical (no diversity)".into(),
            Box::new({
                let b = base.clone();
                move |_| b.clone()
            }),
        ),
        (
            "register-permutation".into(),
            Box::new({
                let b = base.clone();
                move |rng| RegisterPermutation.apply(&b, rng)
            }),
        ),
        (
            "commutative-swap".into(),
            Box::new({
                let b = base.clone();
                move |rng| CommutativeSwap { prob: 0.7 }.apply(&b, rng)
            }),
        ),
        (
            "nop-padding".into(),
            Box::new({
                let b = base.clone();
                move |rng| NopPadding { density: 0.12 }.apply(&b, rng)
            }),
        ),
        (
            "immediate-rewrite".into(),
            Box::new({
                let b = base.clone();
                move |rng| ImmediateRewrite.apply(&b, rng)
            }),
        ),
        (
            "full pipeline".into(),
            Box::new({
                let b = base.clone();
                move |rng| vds_diversity::diversify(&b, 1, rng.gen())
            }),
        ),
    ];
    // fault-free reference state after max_rounds
    let clean_final = {
        let mut c = Core::new(CoreConfig::single_threaded());
        let t = c.add_thread(&base, workload::DMEM_WORDS);
        for _ in 0..max_rounds {
            assert_eq!(c.run_until_all_blocked(2_000_000), RunOutcome::AllYielded);
            c.resume(t);
        }
        c.thread(t).dmem.clone()
    };
    variants
        .into_iter()
        .map(|(name, make)| {
            let mut detected = 0u64;
            let mut silent = 0u64;
            for t in 0..trials {
                let mut rng = SmallRng::seed_from_u64(0xAB1A ^ t);
                let variant = make(&mut rng);
                let fault = vds_fault::model::sample_fu_fault(&mut rng, 2, 1);
                let out = duplex_under_fault(&base, &variant, &clean_final, fault, max_rounds);
                detected += u64::from(out.detected);
                silent += u64::from(out.silent_wrong);
            }
            (
                name,
                detected as f64 / trials as f64,
                silent as f64 / trials as f64,
            )
        })
        .collect()
}

/// Regenerate all three ablation tables.
pub fn report(trials: u64) -> Report {
    let mut text = String::new();
    let mut csv = String::from("ablation,setting,value\n");

    let _ = writeln!(text, "A1 — fetch policy (α round-robin vs ICOUNT):");
    for (pair, rr, ic) in fetch_policy_ablation(2) {
        let _ = writeln!(text, "  {pair:<22} RR={rr:.3} ICOUNT={ic:.3}");
        let _ = writeln!(csv, "fetch-rr,{pair},{rr}");
        let _ = writeln!(csv, "fetch-icount,{pair},{ic}");
    }

    let _ = writeln!(
        text,
        "\nA2 — shared D-cache capacity vs α (pchase self-pair):"
    );
    for (cap, a) in cache_ablation(2) {
        let _ = writeln!(text, "  {cap:>6} words: α = {a:.3}");
        let _ = writeln!(csv, "dcache,{cap},{a}");
    }

    let _ = writeln!(
        text,
        "\nA3 — permanent-fault coverage by transformation\n\
         ({trials} random stuck-at ALU/MUL/MEM faults, duplex compared for 12 rounds):"
    );
    let _ = writeln!(
        text,
        "  {:<26} {:>10} {:>14}",
        "transformation", "detected", "SILENT WRONG"
    );
    for (name, det, silent) in diversity_ablation(trials, 12) {
        let _ = writeln!(
            text,
            "  {name:<26} {:>9.1}% {:>13.1}%",
            100.0 * det,
            100.0 * silent
        );
        let _ = writeln!(csv, "diversity-detected,{name},{det}");
        let _ = writeln!(csv, "diversity-silent,{name},{silent}");
    }
    let _ = writeln!(
        text,
        "\nidentical versions compute identical *values*, so a stuck-at fault\n\
         corrupts both alike: zero divergence, maximal silent-wrong rate.\n\
         Value-preserving transforms (renaming, swaps, padding) cannot help\n\
         on an in-order single-issue machine — only *value* diversity\n\
         (arithmetic recoding, as in Lovrić's systematic diversity) and the\n\
         SMT co-run's unit-assignment diversity make permanent faults visible.\n\
         This is the quantitative backing for the paper's §2.1 requirement."
    );
    Report {
        id: "E14",
        title: "Ablations — fetch policy, cache pressure, diversity transforms",
        text,
        data: vec![("ablation.csv".into(), csv)],
        metrics: Default::default(),
        spans: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_versions_never_desynchronise_under_shared_fault() {
        // identical programs on identical (single-issue) hardware are
        // corrupted identically: detection only via fail-stop traps,
        // never via state comparison — silent wrong output is possible
        let rows = diversity_ablation(8, 8);
        let (name, detected, silent) = &rows[0];
        assert!(name.contains("identical"));
        // any detection here must be trap-based; combined with silent
        // cases the two outcomes partition the effective faults
        assert!(
            *detected + *silent <= 1.0 + 1e-12,
            "detected {detected} + silent {silent}"
        );
    }

    #[test]
    fn recoded_pipeline_detects_alu_faults_identical_versions_miss() {
        // The effect lives in the ALU class: loads/stores and multiplies
        // feed the *same* value streams through the faulty unit in every
        // version, so only value diversity (arithmetic recoding, in the
        // full pipeline) desynchronises the corruption. Compare focused
        // ALU stuck-bit faults.
        use vds_smtsim::core::FuFault;
        use vds_smtsim::isa::FuClass;
        let base = workload::build(1_000_000);
        let full = vds_diversity::diversify(&base, 1, 777);
        let rounds = 10;
        let clean_final = {
            let mut c = Core::new(CoreConfig::single_threaded());
            let t = c.add_thread(&base, workload::DMEM_WORDS);
            for _ in 0..rounds {
                assert_eq!(c.run_until_all_blocked(2_000_000), RunOutcome::AllYielded);
                c.resume(t);
            }
            c.thread(t).dmem.clone()
        };
        let mut ident_div = 0;
        let mut full_div = 0;
        let mut effective = 0;
        for bit in 0..10u8 {
            for value in [true, false] {
                let fault = FuFault {
                    class: FuClass::Alu,
                    unit: 0,
                    bit,
                    value,
                };
                let i = duplex_under_fault(&base, &base, &clean_final, fault, rounds);
                let f = duplex_under_fault(&base, &full, &clean_final, fault, rounds);
                if i.silent_wrong || i.detected {
                    effective += 1;
                }
                ident_div += u32::from(i.detected);
                full_div += u32::from(f.detected);
            }
        }
        assert!(effective > 5, "need effective faults, got {effective}");
        assert!(
            full_div > ident_div,
            "full pipeline detected {full_div} vs identical {ident_div}"
        );
    }

    #[test]
    fn cache_capacity_lowers_alpha_for_thrashing_pair() {
        let curve = cache_ablation(1);
        let small = curve.first().unwrap().1;
        let large = curve.last().unwrap().1;
        assert!(
            large < small,
            "bigger shared cache must improve overlap: {small} -> {large}"
        );
    }

    #[test]
    fn fetch_policy_alphas_in_range() {
        for (pair, rr, ic) in fetch_policy_ablation(1) {
            assert!((0.4..=1.1).contains(&rr), "{pair} RR {rr}");
            assert!((0.4..=1.1).contains(&ic), "{pair} ICOUNT {ic}");
        }
    }
}
