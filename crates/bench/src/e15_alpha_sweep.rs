//! E15 — α-sensitivity of the SMT VDS, measured by a parameter sweep.
//!
//! The paper's central claim is Eq. (4): normal-processing throughput of
//! the SMT duplex scales as `G_round ≈ 1/α`. This experiment measures it
//! rather than deriving it — a [`vds_sweep`] grid runs the abstract
//! engine across the whole α range for three recovery schemes under a
//! light stochastic fault load, and the report compares the measured
//! `G_round` of the *fault-free* reference column against the closed
//! form. The sweep executes in parallel but exports byte-identical
//! results for any worker count, so this report is reproducible
//! artefact-for-artefact.

use crate::Report;
use std::fmt::Write as _;
use vds_sweep::{run_sweep, GridSpec};

/// α axis: the full SMT range at 0.05 resolution.
fn alphas() -> Vec<f64> {
    (10..=20).map(|i| f64::from(i) / 20.0).collect()
}

/// Regenerate the α-sensitivity study. `rounds` sizes each cell's
/// mission; `workers` parallelises the sweep without changing a byte.
pub fn report(rounds: u64, workers: usize, seed: u64) -> Report {
    let spec = GridSpec {
        alphas: alphas(),
        s_values: vec![20],
        schemes: vec![
            vds_core::Scheme::SmtDeterministic,
            vds_core::Scheme::SmtProbabilistic,
            vds_core::Scheme::SmtPredictive,
        ],
        qs: vec![0.0, 0.01],
        rounds,
        base_seed: seed,
        ..GridSpec::default()
    };
    let outcome = run_sweep(&spec, workers, None, &Default::default(), None);

    let mut text = format!(
        "α sweep: {} cells ({} α values x 3 schemes x q in {{0, 0.01}}), s=20, {} rounds/cell\n\n",
        outcome.results.len(),
        spec.alphas.len(),
        rounds
    );
    let _ = writeln!(
        text,
        "{:>6} {:>8} {:>14} {:>14} {:>14}",
        "alpha", "1/alpha", "smt-det", "smt-prob", "smt-pred"
    );
    let mut worst_dev: f64 = 0.0;
    for &alpha in &spec.alphas {
        let g_of = |scheme: vds_core::Scheme| {
            outcome
                .results
                .iter()
                .find(|r| r.cell.alpha == alpha && r.cell.scheme == scheme && r.cell.q == 0.0)
                .map(|r| r.g_round)
                .unwrap_or(f64::NAN)
        };
        let det = g_of(vds_core::Scheme::SmtDeterministic);
        worst_dev = worst_dev.max((det - 1.0 / alpha).abs());
        let _ = writeln!(
            text,
            "{alpha:>6.2} {:>8.4} {det:>14.4} {:>14.4} {:>14.4}",
            1.0 / alpha,
            g_of(vds_core::Scheme::SmtProbabilistic),
            g_of(vds_core::Scheme::SmtPredictive),
        );
    }
    let _ = writeln!(
        text,
        "\nfault-free G_round tracks Eq. (4)'s 1/α within {worst_dev:.4} \
         (residual: the β=0.1 comparison/context-switch overhead)"
    );
    let _ = writeln!(
        text,
        "under q=0.01 the sweep's full CSV (below) shows the recovery-time \
         dent growing as α → 1 takes the roll-forward window's value away"
    );
    Report {
        id: "E15",
        title: "Measured α-sensitivity of G_round (sweep-backed)",
        text,
        data: vec![(
            "alpha_sensitivity.csv".into(),
            // measured columns only: the attachment bytes feed the
            // work-unit gate, so this artefact is byte-pinned (the
            // conformance columns live in `vds sweep` exports)
            vds_sweep::to_measured_csv(&outcome.results),
        )],
        metrics: outcome.registry,
        spans: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_column_tracks_one_over_alpha() {
        let r = report(300, 2, 1);
        assert_eq!(r.id, "E15");
        assert!(r.text.contains("tracks Eq. (4)"), "{}", r.text);
        // the α=0.50 fault-free row shows G_round near 2
        assert!(r.text.contains("  0.50   2.0000"), "{}", r.text);
        assert_eq!(r.metrics.counter("sweep.cells_total"), 11 * 3 * 2);
    }

    #[test]
    fn report_is_worker_count_invariant() {
        let a = report(150, 1, 1);
        let b = report(150, 6, 1);
        assert_eq!(a.text, b.text);
        assert_eq!(a.data, b.data);
        assert_eq!(a.metrics, b.metrics);
    }
}
