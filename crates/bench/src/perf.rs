//! `vds bench` — the performance-trajectory suite.
//!
//! Runs a pinned subset of registry experiments at pinned sizes, records
//! the host wall-clock per experiment alongside the **deterministic work
//! counters** the run produced, and renders the result as a
//! schema-versioned `BENCH_<n>.json`. Wall-clock numbers are quarantined
//! exactly like the registry's host summaries: they never feed back into
//! simulation results and are expected to vary between machines. The
//! `work_units` column, by contrast, is the sum of every deterministic
//! counter the experiment recorded — byte-identical for a fixed seed
//! across runs and worker counts — so a drift there is a *determinism*
//! regression, not a slow machine.
//!
//! [`check`] compares a fresh run against a committed baseline: it fails
//! on schema mismatch, missing experiments, size drift, any `work_units`
//! change, and on throughput (`work_units / host_ms`) dropping by more
//! than the threshold (default 50%, generous enough for shared CI
//! runners while still catching order-of-magnitude regressions).

use vds_obs::Stopwatch;

/// Bump when the JSON layout changes incompatibly.
pub const SCHEMA_VERSION: u32 = 1;

/// Default allowed relative throughput drop before [`check`] complains.
pub const DEFAULT_REGRESSION_THRESHOLD: f64 = 0.5;

/// The pinned suite: `(experiment id, size knob)`. Sizes are chosen so a
/// release-mode run finishes in seconds while still exercising all four
/// backends (analytic, abstract engine, SMT simulator, fault campaign).
pub const SUITE: &[(&str, u64)] = &[
    ("E1", 120),
    ("E2", 24),
    ("E9", 2),
    ("E10", 64),
    ("E12", 400),
    // sweep-backed experiments: exercise the parallel sweep engine and
    // its memoized baselines; extra entries are ignored by `check`
    // against older baselines, so adding them here is not a break
    ("E15", 400),
    ("E16", 400),
    // α-decomposition ledger: cycle-level SMT backend, counter-only
    ("E17", 2),
    // bytecode-VM duplex: gain table + per-program fault campaign
    ("E18", 24),
];

/// One experiment's row in the bench report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Registry id, e.g. `"E10"`.
    pub id: String,
    /// The size knob the experiment ran at.
    pub sim_rounds: u64,
    /// Host wall-clock for the run, milliseconds (machine-dependent).
    pub host_ms: f64,
    /// Sum of all deterministic counters the run recorded
    /// (seed-determined; worker-count invariant).
    pub work_units: u64,
    /// Observations in the run's `*.conformance.residual_abs`
    /// histograms (0 when the experiment records no conformance —
    /// additive v1 field, absent in pre-conformance baselines).
    pub conf_samples: u64,
    /// Mean |predicted-vs-measured G residual| across those
    /// observations (0 when there are none). Seed-determined, like
    /// `work_units` — drift here is a model or determinism change.
    pub conf_mean_abs_residual: f64,
}

impl BenchEntry {
    /// Deterministic work per host millisecond — the throughput figure
    /// the regression gate compares.
    pub fn work_per_ms(&self) -> f64 {
        self.work_units as f64 / self.host_ms.max(1e-6)
    }
}

/// A full bench run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Layout version, [`SCHEMA_VERSION`] for fresh runs.
    pub schema_version: u32,
    /// One entry per suite experiment, in suite order.
    pub experiments: Vec<BenchEntry>,
}

/// Run the pinned suite at its pinned sizes.
pub fn run_suite(workers: usize, seed: Option<u64>) -> BenchReport {
    run_suite_with(workers, seed, None)
}

/// Each suite experiment is executed this many times and the fastest
/// repeat is reported. For a deterministic workload the minimum is the
/// low-noise estimator: timer jitter, scheduler preemption and cold
/// caches can only add time, so they inflate the discarded repeats.
pub const TIMING_REPEATS: u32 = 3;

/// [`run_suite`] with every size knob capped at `max_rounds` — used by
/// tests and `vds bench --rounds N` to keep debug-mode runs fast. Capped
/// runs are comparable only against baselines produced at the same cap.
///
/// Panics if an experiment's `work_units` differ between timing repeats:
/// the counters are seed-determined, so any variation is a determinism
/// bug that must not be averaged away.
pub fn run_suite_with(workers: usize, seed: Option<u64>, max_rounds: Option<u64>) -> BenchReport {
    let mut experiments = Vec::with_capacity(SUITE.len());
    for &(id, size) in SUITE {
        let rounds = max_rounds.map_or(size, |cap| size.min(cap));
        let exp = crate::registry::find(id).expect("suite id in registry");
        let p = crate::ExpParams {
            rounds: Some(rounds),
            seed,
            workers,
        };
        let mut host_ms = f64::INFINITY;
        let mut work_units = 0u64;
        let mut conf = (0u64, 0.0f64);
        for rep in 0..TIMING_REPEATS {
            let sw = Stopwatch::start();
            let report = exp.run(&p);
            let ms = sw.elapsed_secs() * 1e3;
            let units: u64 = report.metrics.counters().map(|(_, v)| v).sum();
            if rep == 0 {
                work_units = units;
                conf = conformance_summary(&report.metrics);
            } else {
                assert_eq!(
                    units, work_units,
                    "{id}: work_units varied between identical repeats"
                );
            }
            host_ms = host_ms.min(ms);
        }
        experiments.push(BenchEntry {
            id: id.to_string(),
            sim_rounds: rounds,
            host_ms,
            work_units,
            conf_samples: conf.0,
            conf_mean_abs_residual: conf.1,
        });
    }
    BenchReport {
        schema_version: SCHEMA_VERSION,
        experiments,
    }
}

/// `(observations, mean |residual|)` pooled over every
/// `*.conformance.residual_abs` histogram in the registry (the abstract
/// engine, fault campaigns and the sweep all export under that suffix).
fn conformance_summary(reg: &vds_obs::Registry) -> (u64, f64) {
    let (mut n, mut sum) = (0u64, 0.0f64);
    for (name, h) in reg.histograms() {
        if name.ends_with("conformance.residual_abs") {
            n += h.count();
            sum += h.sum();
        }
    }
    (n, if n > 0 { sum / n as f64 } else { 0.0 })
}

impl BenchReport {
    /// Render as `BENCH_<n>.json` content: the shared report envelope,
    /// then one experiment per line (rows built with
    /// [`vds_obs::JsonObj`], the same serializer `vds stats --json` and
    /// `/progress` use), trailing newline. Everything except `host_ms`
    /// and the derived `work_per_ms` is byte-stable for a fixed seed.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .experiments
            .iter()
            .map(|e| {
                format!(
                    "    {}",
                    vds_obs::JsonObj::new()
                        .str("id", &e.id)
                        .u64("sim_rounds", e.sim_rounds)
                        .f64_fixed("host_ms", e.host_ms, 3)
                        .u64("work_units", e.work_units)
                        .f64_fixed("work_per_ms", e.work_per_ms(), 3)
                        .u64("conf_samples", e.conf_samples)
                        .f64_fixed("conf_mean_abs_residual", e.conf_mean_abs_residual, 6)
                        .finish()
                )
            })
            .collect();
        format!(
            "{{\n  \"schema\": \"{}\",\n  \"kind\": \"bench\",\n  \"schema_version\": {},\n  \"experiments\": [\n{}\n  ]\n}}\n",
            vds_obs::REPORT_SCHEMA,
            self.schema_version,
            rows.join(",\n")
        )
    }

    /// Parse a report previously written by [`Self::to_json`]. The
    /// parser is deliberately small: flat objects, no string escapes —
    /// exactly the subset the writer emits.
    pub fn from_json(s: &str) -> Result<BenchReport, String> {
        let schema_version =
            extract_u64(s, "schema_version").ok_or("missing schema_version".to_string())? as u32;
        let key = s
            .find("\"experiments\"")
            .ok_or("missing experiments".to_string())?;
        let arr_start = key
            + s[key..]
                .find('[')
                .ok_or("malformed experiments array".to_string())?;
        let arr_end = arr_start
            + s[arr_start..]
                .rfind(']')
                .ok_or("unterminated experiments array".to_string())?;
        let mut experiments = Vec::new();
        let mut rest = &s[arr_start + 1..arr_end];
        while let Some(open) = rest.find('{') {
            let close = open
                + rest[open..]
                    .find('}')
                    .ok_or("unterminated experiment object".to_string())?;
            let obj = &rest[open + 1..close];
            experiments.push(BenchEntry {
                id: extract_str(obj, "id").ok_or("experiment missing id".to_string())?,
                sim_rounds: extract_u64(obj, "sim_rounds")
                    .ok_or("experiment missing sim_rounds".to_string())?,
                host_ms: extract_f64(obj, "host_ms")
                    .ok_or("experiment missing host_ms".to_string())?,
                work_units: extract_u64(obj, "work_units")
                    .ok_or("experiment missing work_units".to_string())?,
                // additive fields: absent in pre-conformance baselines
                conf_samples: extract_u64(obj, "conf_samples").unwrap_or(0),
                conf_mean_abs_residual: extract_f64(obj, "conf_mean_abs_residual").unwrap_or(0.0),
            });
            rest = &rest[close + 1..];
        }
        Ok(BenchReport {
            schema_version,
            experiments,
        })
    }
}

/// The raw token following `"key":`, trimmed, with no surrounding quotes
/// stripped.
fn raw_value<'a>(s: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let at = s.find(&needle)? + needle.len();
    let after = s[at..].trim_start();
    let after = after.strip_prefix(':')?.trim_start();
    let end = after.find([',', '}', '\n', ']']).unwrap_or(after.len());
    Some(after[..end].trim())
}

fn extract_u64(s: &str, key: &str) -> Option<u64> {
    raw_value(s, key)?.parse().ok()
}

fn extract_f64(s: &str, key: &str) -> Option<f64> {
    raw_value(s, key)?.parse().ok()
}

fn extract_str(s: &str, key: &str) -> Option<String> {
    let v = raw_value(s, key)?;
    Some(v.strip_prefix('"')?.strip_suffix('"')?.to_string())
}

/// Experiments that complete faster than this on the baseline host are
/// exempt from the throughput gate: below a few milliseconds, timer
/// jitter and allocator warm-up swing work/ms by far more than any real
/// regression could. Their deterministic work_units counters are still
/// compared bit-for-bit, so a logic change cannot hide under the floor —
/// only host timing noise is forgiven.
pub const TIMING_FLOOR_MS: f64 = 5.0;

/// Compare a fresh run against a baseline. Returns human-readable issue
/// lines, empty when the run passes. `threshold` is the allowed relative
/// throughput drop (e.g. 0.5 = tolerate anything down to half the
/// baseline's work/ms). Experiments whose baseline run is shorter than
/// [`TIMING_FLOOR_MS`] skip the throughput comparison (see its doc).
pub fn check(current: &BenchReport, baseline: &BenchReport, threshold: f64) -> Vec<String> {
    let mut issues = Vec::new();
    if current.schema_version != baseline.schema_version {
        issues.push(format!(
            "schema_version mismatch: current {} vs baseline {}",
            current.schema_version, baseline.schema_version
        ));
        return issues;
    }
    for base in &baseline.experiments {
        let Some(cur) = current.experiments.iter().find(|e| e.id == base.id) else {
            issues.push(format!("{}: missing from current run", base.id));
            continue;
        };
        if cur.sim_rounds != base.sim_rounds {
            issues.push(format!(
                "{}: sim_rounds differ (current {} vs baseline {}) — runs not comparable",
                base.id, cur.sim_rounds, base.sim_rounds
            ));
            continue;
        }
        if cur.work_units != base.work_units {
            issues.push(format!(
                "{}: work_units drifted (current {} vs baseline {}) — deterministic \
                 counters changed, this is a determinism regression, not a slow host",
                base.id, cur.work_units, base.work_units
            ));
        }
        if base.host_ms < TIMING_FLOOR_MS {
            continue;
        }
        let floor = base.work_per_ms() * (1.0 - threshold);
        if cur.work_per_ms() < floor {
            issues.push(format!(
                "{}: throughput regression ({:.1} vs baseline {:.1} work/ms, \
                 allowed floor {:.1})",
                base.id,
                cur.work_per_ms(),
                base.work_per_ms(),
                floor
            ));
        }
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            experiments: vec![
                BenchEntry {
                    id: "E1".into(),
                    sim_rounds: 120,
                    host_ms: 12.5,
                    work_units: 4200,
                    conf_samples: 3,
                    conf_mean_abs_residual: 0.012345,
                },
                BenchEntry {
                    id: "E10".into(),
                    sim_rounds: 64,
                    host_ms: 800.0,
                    work_units: 987_654,
                    conf_samples: 0,
                    conf_mean_abs_residual: 0.0,
                },
            ],
        }
    }

    #[test]
    fn suite_ids_resolve_in_the_registry() {
        for &(id, size) in SUITE {
            assert!(crate::registry::find(id).is_some(), "{id} not in registry");
            assert!(size > 0);
        }
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn check_passes_against_itself_and_catches_tampering() {
        let r = sample();
        assert!(check(&r, &r, DEFAULT_REGRESSION_THRESHOLD).is_empty());

        let mut drifted = r.clone();
        drifted.experiments[0].work_units += 1;
        let issues = check(&drifted, &r, DEFAULT_REGRESSION_THRESHOLD);
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert!(issues[0].contains("work_units drifted"), "{issues:?}");

        let mut slow = r.clone();
        slow.experiments[1].host_ms *= 10.0;
        let issues = check(&slow, &r, DEFAULT_REGRESSION_THRESHOLD);
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert!(issues[0].contains("throughput regression"), "{issues:?}");

        let mut old = r.clone();
        old.schema_version += 1;
        let issues = check(&old, &r, DEFAULT_REGRESSION_THRESHOLD);
        assert!(issues[0].contains("schema_version"), "{issues:?}");

        let mut shrunk = r.clone();
        shrunk.experiments.pop();
        let issues = check(&shrunk, &r, DEFAULT_REGRESSION_THRESHOLD);
        assert!(issues[0].contains("missing"), "{issues:?}");

        let mut resized = r.clone();
        resized.experiments[0].sim_rounds = 1;
        let issues = check(&resized, &r, DEFAULT_REGRESSION_THRESHOLD);
        assert!(issues[0].contains("sim_rounds differ"), "{issues:?}");
    }

    #[test]
    fn microbenchmarks_under_the_timing_floor_skip_the_throughput_gate() {
        let mut r = sample();
        r.experiments[0].host_ms = TIMING_FLOOR_MS / 10.0;
        // a 10x slowdown on a sub-floor experiment is timing noise
        let mut jittery = r.clone();
        jittery.experiments[0].host_ms *= 10.0;
        assert!(check(&jittery, &r, 0.15).is_empty());
        // but its deterministic counters are still gated
        let mut drifted = jittery.clone();
        drifted.experiments[0].work_units -= 1;
        let issues = check(&drifted, &r, 0.15);
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert!(issues[0].contains("work_units drifted"), "{issues:?}");
        // the floor compares the baseline timing, not the current one:
        // an experiment that was timeable at baseline stays gated even
        // if the regression pushes the current run under the floor
        let mut slow = r.clone();
        slow.experiments[1].host_ms *= 10.0;
        let issues = check(&slow, &r, 0.15);
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert!(issues[0].contains("throughput regression"), "{issues:?}");
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        assert!(BenchReport::from_json("{}").is_err());
        assert!(BenchReport::from_json("{\"schema_version\": 1}").is_err());
        assert!(BenchReport::from_json(
            "{\"schema_version\": 1, \"experiments\": [{\"id\":\"E1\"}]}"
        )
        .is_err());
    }

    #[test]
    fn tiny_suite_run_is_deterministic_across_worker_counts() {
        // cap the knobs so the debug-mode run stays cheap; work_units
        // must not depend on the worker count
        let a = run_suite_with(1, Some(1), Some(2));
        let b = run_suite_with(4, Some(1), Some(2));
        assert_eq!(a.schema_version, SCHEMA_VERSION);
        assert_eq!(a.experiments.len(), SUITE.len());
        for (ea, eb) in a.experiments.iter().zip(&b.experiments) {
            assert_eq!(ea.id, eb.id);
            assert_eq!(ea.sim_rounds, eb.sim_rounds);
            assert_eq!(ea.work_units, eb.work_units, "{}", ea.id);
            assert!(ea.work_units > 0, "{} recorded no work", ea.id);
        }
    }
}
