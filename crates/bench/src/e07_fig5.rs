//! E7 — Figure 5: the gain surface `Ḡ_corr(α, β)` for p = 1.0 (perfect
//! prediction of the faulty version), s = 20.

use crate::Report;

/// Figure 5 (p = 1.0).
pub fn report() -> Report {
    crate::e06_fig4::figure_report("E7", "Figure 5 — Ḡ_corr(α, β) for p = 1.0", 1.0)
}

#[cfg(test)]
mod tests {
    use vds_analytic::figures::gain_surface;

    #[test]
    fn figure5_dominates_figure4_everywhere() {
        let g4 = gain_surface(0.5, 20, 26, 21);
        let g5 = gain_surface(1.0, 20, 26, 21);
        for i in 0..g4.gain.len() {
            assert!(g5.gain[i] >= g4.gain[i] - 1e-12);
        }
        // at the paper point, perfect prediction roughly doubles the
        // roll-forward benefit: G(p=1) ≈ (1 + 2.3·ln2)/(2α) ≈ 1.995
        let v = g5.nearest(0.65, 0.1);
        assert!((v - 2.0).abs() < 0.08, "fig5(0.65, 0.1) = {v}");
    }

    #[test]
    fn report_renders() {
        let r = super::report();
        assert!(r.title.contains("Figure 5"));
        assert!(r.text.contains("p = 1"));
    }
}
