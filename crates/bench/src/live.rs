//! The live-telemetry demo campaign behind `vds serve`.
//!
//! `vds serve` needs a campaign that is representative (real faults
//! against the real cycle-level VDS, like E10), deterministic for a
//! fixed seed, and instrumented: every trial folds its run report and
//! SMT pipeline counters into the shard recorder, so the telemetry
//! hub's `/metrics` exposition shows `vds.*`, `smt.*` and `campaign.*`
//! series filling in while the campaign runs.

use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng};
use vds_core::micro_vds::{run_micro_recorded, run_micro_with_recorder, MicroConfig, MicroFault};
use vds_core::workload;
use vds_core::{Scheme, Victim};
use vds_fault::campaign::TrialResult;
use vds_fault::model::{sample_transient_site, FaultKind};
use vds_obs::{JournalHeader, Recorder};

/// One instrumented trial of the serve campaign: a transient fault at a
/// random round/site against the diversified micro VDS. Deterministic in
/// `(index, base_seed, target_rounds)`; records the run's `vds.*` and
/// `smt.*` metrics into `rec`. When `rec` carries an enabled
/// flight-recorder journal (a campaign launched through
/// `run_campaign_journaled`), the micro run is journaled too and its
/// round entries are adopted under lane `index`.
pub fn campaign_trial(
    index: u64,
    base_seed: u64,
    target_rounds: u64,
    rec: &mut Recorder,
) -> TrialResult {
    campaign_trial_for(
        Scheme::SmtProbabilistic,
        index,
        base_seed,
        target_rounds,
        rec,
    )
}

/// [`campaign_trial`] with the recovery scheme as a parameter, so `vds
/// serve --scheme` (and `vds replay` of such a recording) can run the
/// same campaign under any micro-capable scheme. The fault sequence
/// depends only on `(index, base_seed)`, so two campaigns differing only
/// in scheme face identical fault injections.
pub fn campaign_trial_for(
    scheme: Scheme,
    index: u64,
    base_seed: u64,
    target_rounds: u64,
    rec: &mut Recorder,
) -> TrialResult {
    let mut rng = SmallRng::seed_from_u64(
        index
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(base_seed)
            ^ 0x5EE7,
    );
    let mut cfg = MicroConfig::new(scheme, 8);
    cfg.seed = base_seed.wrapping_add(index);
    let victim = if rng.gen() { Victim::V1 } else { Victim::V2 };
    let at_round = rng.gen_range(1..=cfg.s);
    let text_len = workload::build(4).text.len() as u32 + 8;
    let site = sample_transient_site(&mut rng, workload::DMEM_WORDS as u32, text_len);
    let fault = MicroFault {
        at_round,
        victim,
        kind: FaultKind::Transient(site),
    };
    let (report, run_rec) = if rec.journal_enabled() {
        let mut run_rec = Recorder::new();
        if let Some(h) = rec.journal().header() {
            run_rec.enable_journal(h.clone());
        }
        let (report, _, run_rec) =
            run_micro_with_recorder(&cfg, Some(fault), target_rounds, run_rec);
        (report, run_rec)
    } else {
        run_micro_recorded(&cfg, Some(fault), target_rounds)
    };
    rec.merge_registry(run_rec.registry());
    rec.adopt_journal(run_rec.journal(), index);
    TrialResult::with_value(trial_label(&report), report.detections as f64)
}

/// One instrumented trial of the **bytecode-VM** serve campaign
/// (`vds serve --workload vm:<program>`): a sampled architectural-state
/// fault ([`vds_fault::vm::sample_vm_site`]) against the diversified
/// duplex of a `vds-vm` seed program. Deterministic in
/// `(program, index, base_seed, target_rounds)` with the same
/// journal-adoption contract as [`campaign_trial_for`].
pub fn vm_campaign_trial_for(
    program: &str,
    scheme: Scheme,
    index: u64,
    base_seed: u64,
    target_rounds: u64,
    rec: &mut Recorder,
) -> TrialResult {
    use vds_core::vm_vds::{
        run_vm_duplex_recorded, run_vm_duplex_with_recorder, VmConfig, VmFault,
    };
    let mut rng = SmallRng::seed_from_u64(
        index
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(base_seed)
            ^ 0xB17E,
    );
    let mut cfg = VmConfig::new(program);
    cfg.scheme = scheme;
    cfg.seed = base_seed.wrapping_add(index);
    let victim = if rng.gen() { Victim::V1 } else { Victim::V2 };
    let at_round = rng.gen_range(1..=cfg.s);
    let lit_words = vds_vm::seed_program(program).map_or(0, |sp| sp.assembled().lits.len() as u32);
    let site = vds_fault::vm::sample_vm_site(&mut rng, vds_vm::DMEM_WORDS as u32, lit_words);
    let fault = VmFault {
        at_round,
        victim,
        site,
    };
    let (report, run_rec) = if rec.journal_enabled() {
        let mut run_rec = Recorder::new();
        if let Some(h) = rec.journal().header() {
            run_rec.enable_journal(h.clone());
        }
        let (report, _, run_rec) =
            run_vm_duplex_with_recorder(&cfg, Some(fault), target_rounds, run_rec);
        (report, run_rec)
    } else {
        let (report, run_rec) = run_vm_duplex_recorded(&cfg, Some(fault), target_rounds);
        (report, run_rec)
    };
    rec.merge_registry(run_rec.registry());
    rec.adopt_journal(run_rec.journal(), index);
    TrialResult::with_value(trial_label(&report), report.detections as f64)
}

/// Classify a trial's run report into its campaign outcome label.
///
/// Masked and escaped faults both go undetected, but they are different
/// outcomes: a masked fault's corruption was overwritten (or
/// architecturally absorbed) before any comparison — the output is
/// correct — while an escaped fault's corruption survives to the end of
/// the run as silent data corruption. The campaign used to conflate the
/// two under "masked" by labelling every zero-detection run masked.
pub fn trial_label(report: &vds_core::report::RunReport) -> &'static str {
    if report.shutdown {
        "failsafe-shutdown"
    } else if report.faults_escaped > 0 {
        "escaped"
    } else if report.faults_masked > 0 {
        "masked"
    } else if report.rollbacks > 0 {
        "rollback"
    } else {
        "recovered"
    }
}

/// The journal header describing a serve/fault campaign, so recordings
/// and `vds replay` re-runs agree on the run's identity. `s` and the
/// scheme mirror [`campaign_trial`]'s fixed configuration.
pub fn campaign_journal_header(trials: u64, base_seed: u64, target_rounds: u64) -> JournalHeader {
    campaign_journal_header_for(Scheme::SmtProbabilistic, trials, base_seed, target_rounds)
}

/// [`campaign_journal_header`] for a [`campaign_trial_for`] campaign
/// under `scheme`: the header records the scheme so replay and the
/// conformance tracker price the rounds with the right closed forms.
pub fn campaign_journal_header_for(
    scheme: Scheme,
    trials: u64,
    base_seed: u64,
    target_rounds: u64,
) -> JournalHeader {
    let cfg = MicroConfig::new(scheme, 8);
    JournalHeader::new("campaign", scheme.name(), base_seed, cfg.s, target_rounds)
        .with_meta("trials", &trials.to_string())
}

/// The journal header for a [`vm_campaign_trial_for`] campaign. Backend
/// `vm` with a `trials` meta key distinguishes it from a single
/// `vds vm duplex` recording (same backend, no `trials`); `vds replay`
/// dispatches on exactly that.
pub fn vm_campaign_journal_header_for(
    program: &str,
    scheme: Scheme,
    trials: u64,
    base_seed: u64,
    target_rounds: u64,
) -> JournalHeader {
    let cfg = vds_core::vm_vds::VmConfig::new(program);
    JournalHeader::new("vm", scheme.name(), base_seed, cfg.s, target_rounds)
        .with_meta("program", program)
        .with_meta("trials", &trials.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vds_fault::campaign::run_campaign_recorded_as;

    #[test]
    fn serve_campaign_is_deterministic_and_instrumented() {
        let run = |workers| {
            run_campaign_recorded_as("serve", 24, workers, |i, rec| {
                campaign_trial(i, 42, 40, rec)
            })
        };
        let (ra, reca) = run(1);
        let (rb, recb) = run(4);
        assert_eq!(ra, rb);
        assert_eq!(reca.registry().to_csv(), recb.registry().to_csv());
        assert_eq!(ra.trials, 24);
        // trial recordings landed: committed rounds and SMT counters
        assert!(reca.registry().counter("vds.committed_rounds") > 0);
        assert!(reca
            .registry()
            .counters()
            .any(|(name, _)| name.starts_with("smt.")));
    }

    #[test]
    fn journaled_serve_campaign_is_byte_identical_across_workers() {
        use vds_fault::campaign::run_campaign_journaled;
        let header = campaign_journal_header(12, 42, 30);
        let run = |workers| {
            run_campaign_journaled("serve", 12, workers, None, &header, |i, rec| {
                campaign_trial(i, 42, 30, rec)
            })
        };
        let (ra, reca) = run(1);
        let (rb, recb) = run(4);
        assert_eq!(ra, rb);
        let j = reca.journal();
        assert_eq!(j.to_jsonl(), recb.journal().to_jsonl());
        assert!(!j.is_empty());
        // lanes are trial indices, in trial order
        let lanes: Vec<u64> = j.entries().iter().map(|e| e.lane).collect();
        let mut sorted = lanes.clone();
        sorted.sort_unstable();
        assert_eq!(lanes, sorted);
        assert_eq!(*lanes.last().unwrap(), 11);
        // header survives into the merged journal
        assert_eq!(j.header().unwrap().meta("trials"), Some("12"));
        // the journal block is exported into the merged registry
        assert_eq!(reca.registry().counter("journal.rounds"), j.len() as u64);
        // fault forensics counters are priced from the same merged
        // journal and conserve the lifecycle
        let reg = reca.registry();
        let injected = reg.counter("faults.injected");
        assert!(injected > 0);
        assert_eq!(
            reg.counter("faults.detected")
                + reg.counter("faults.masked")
                + reg.counter("faults.escaped"),
            injected
        );
    }

    #[test]
    fn journaled_vm_campaign_is_byte_identical_across_workers() {
        use vds_fault::campaign::run_campaign_journaled;
        let scheme = Scheme::SmtDeterministic;
        let header = vm_campaign_journal_header_for("checksum", scheme, 8, 42, 16);
        let run = |workers| {
            run_campaign_journaled("serve", 8, workers, None, &header, |i, rec| {
                vm_campaign_trial_for("checksum", scheme, i, 42, 16, rec)
            })
        };
        let (ra, reca) = run(1);
        let (rb, recb) = run(4);
        assert_eq!(ra, rb);
        assert_eq!(reca.journal().to_jsonl(), recb.journal().to_jsonl());
        let j = reca.journal();
        assert!(!j.is_empty());
        assert_eq!(j.header().unwrap().backend, "vm");
        assert_eq!(j.header().unwrap().meta("program"), Some("checksum"));
        assert_eq!(j.header().unwrap().meta("trials"), Some("8"));
        // forensics conservation over the merged journal
        let reg = reca.registry();
        let injected = reg.counter("faults.injected");
        assert!(injected > 0);
        assert_eq!(
            reg.counter("faults.detected")
                + reg.counter("faults.masked")
                + reg.counter("faults.escaped"),
            injected
        );
    }

    #[test]
    fn masked_faults_are_not_conflated_with_detected_or_escaped() {
        use vds_core::report::RunReport;
        // a masked register-boundary fault: injected, never detected,
        // output correct — the label must say "masked", not "recovered"
        let cfg = MicroConfig::new(Scheme::SmtProbabilistic, 10);
        let fault = MicroFault {
            at_round: 4,
            victim: Victim::V1,
            kind: FaultKind::Transient(vds_fault::model::FaultSite::Register { reg: 5, bit: 3 }),
        };
        let (report, _) = run_micro_recorded(&cfg, Some(fault), 15);
        assert_eq!(report.faults_masked, 1);
        assert_eq!(report.faults_detected, 0);
        assert_eq!(trial_label(&report), "masked");
        // a detected-and-recovered fault is "recovered", never "masked"
        let detected = MicroFault {
            at_round: 4,
            victim: Victim::V2,
            kind: FaultKind::Transient(vds_fault::model::FaultSite::Memory { addr: 4, bit: 7 }),
        };
        let (report, _) = run_micro_recorded(&cfg, Some(detected), 15);
        assert_eq!(report.faults_detected, 1);
        assert_eq!(trial_label(&report), "recovered");
        // escaped outranks masked in the label split (silent corruption
        // must never be reported as harmless)
        let escaped = RunReport {
            faults_injected: 2,
            faults_masked: 1,
            faults_escaped: 1,
            ..Default::default()
        };
        assert_eq!(trial_label(&escaped), "escaped");
        let shutdown = RunReport {
            shutdown: true,
            ..Default::default()
        };
        assert_eq!(trial_label(&shutdown), "failsafe-shutdown");
    }
}
