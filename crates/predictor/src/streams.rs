//! Synthetic faulty-version sequences for characterising predictors.
//!
//! Which version a fault corrupts depends on the physical fault location
//! and which version happens to exercise it. Three regimes:
//!
//! * [`IidStream`] — faults hit versions independently (pure transient
//!   noise): nothing is learnable, every predictor degenerates to its
//!   bias.
//! * [`PersistentStream`] — the same version tends to fail repeatedly
//!   (the paper's "a particular part of the hardware is more likely to be
//!   affected … due to process variations", or a marginal unit exercised
//!   predominantly by one version). First-order Markov with persistence
//!   ρ: P(same as last) = ρ.
//! * [`PeriodicStream`] — a deterministic repeating pattern (a
//!   pathological but illustrative case where history depth matters).

use crate::predictors::Suspect;
use rand::rngs::SmallRng;
use rand::Rng as _;

/// A source of "which version was actually faulty" outcomes.
pub trait FaultStream {
    /// Next actual faulty version.
    fn next(&mut self, rng: &mut SmallRng) -> Suspect;
}

/// Independent outcomes; `P(V2) = bias`.
#[derive(Debug, Clone, Copy)]
pub struct IidStream {
    /// Probability that version 2 is the faulty one.
    pub bias: f64,
}

impl FaultStream for IidStream {
    fn next(&mut self, rng: &mut SmallRng) -> Suspect {
        if rng.gen::<f64>() < self.bias {
            Suspect::V2
        } else {
            Suspect::V1
        }
    }
}

/// First-order Markov persistence: repeats the previous outcome with
/// probability `rho`.
#[derive(Debug, Clone, Copy)]
pub struct PersistentStream {
    /// P(next == last).
    pub rho: f64,
    last: Suspect,
}

impl PersistentStream {
    /// Start from V1 with the given persistence.
    pub fn new(rho: f64) -> Self {
        assert!((0.0..=1.0).contains(&rho));
        PersistentStream {
            rho,
            last: Suspect::V1,
        }
    }
}

impl FaultStream for PersistentStream {
    fn next(&mut self, rng: &mut SmallRng) -> Suspect {
        let next = if rng.gen::<f64>() < self.rho {
            self.last
        } else {
            self.last.other()
        };
        self.last = next;
        next
    }
}

/// A fixed repeating pattern.
#[derive(Debug, Clone)]
pub struct PeriodicStream {
    pattern: Vec<Suspect>,
    pos: usize,
}

impl PeriodicStream {
    /// Cycle through `pattern` forever.
    ///
    /// # Panics
    /// Panics on an empty pattern.
    pub fn new(pattern: Vec<Suspect>) -> Self {
        assert!(!pattern.is_empty());
        PeriodicStream { pattern, pos: 0 }
    }

    /// Strict alternation V1, V2, V1, …
    pub fn alternating() -> Self {
        Self::new(vec![Suspect::V1, Suspect::V2])
    }
}

impl FaultStream for PeriodicStream {
    fn next(&mut self, _rng: &mut SmallRng) -> Suspect {
        let s = self.pattern[self.pos];
        self.pos = (self.pos + 1) % self.pattern.len();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(77)
    }

    #[test]
    fn iid_respects_bias() {
        let mut s = IidStream { bias: 0.8 };
        let mut r = rng();
        let v2 = (0..10_000)
            .filter(|_| s.next(&mut r) == Suspect::V2)
            .count();
        assert!((7_700..8_300).contains(&v2), "v2={v2}");
    }

    #[test]
    fn persistent_runs_are_long() {
        let mut s = PersistentStream::new(0.9);
        let mut r = rng();
        let mut switches = 0;
        let mut last = s.next(&mut r);
        for _ in 0..10_000 {
            let cur = s.next(&mut r);
            if cur != last {
                switches += 1;
            }
            last = cur;
        }
        // expected switch rate 0.1
        assert!((800..1_200).contains(&switches), "switches={switches}");
    }

    #[test]
    fn periodic_cycles() {
        let mut s = PeriodicStream::alternating();
        let mut r = rng();
        assert_eq!(s.next(&mut r), Suspect::V1);
        assert_eq!(s.next(&mut r), Suspect::V2);
        assert_eq!(s.next(&mut r), Suspect::V1);
    }
}
