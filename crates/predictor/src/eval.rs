//! Predictor accuracy measurement.
//!
//! The measured accuracy is exactly the `p` of the paper's Eq. (12); the
//! E11 experiment feeds it into
//! `vds_analytic::predictive::gbar_corr_exact` to get the end-to-end
//! recovery gain a given predictor buys on a given fault environment.

use crate::predictors::FaultPredictor;
use crate::streams::FaultStream;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Accuracy measurement result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accuracy {
    /// Fraction of faults whose faulty version was predicted correctly —
    /// the paper's `p`.
    pub p: f64,
    /// Number of faults evaluated.
    pub n: u64,
}

/// Run `n` faults from `stream` through `predictor` and measure `p`.
/// The first `warmup` faults train without being scored.
pub fn measure_accuracy(
    predictor: &mut dyn FaultPredictor,
    stream: &mut dyn FaultStream,
    n: u64,
    warmup: u64,
    seed: u64,
) -> Accuracy {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut correct = 0u64;
    let mut scored = 0u64;
    for k in 0..(n + warmup) {
        let actual = stream.next(&mut rng);
        let guess = predictor.predict();
        if k >= warmup {
            scored += 1;
            if guess == actual {
                correct += 1;
            }
        }
        predictor.update(actual);
    }
    Accuracy {
        p: if scored == 0 {
            0.0
        } else {
            correct as f64 / scored as f64
        },
        n: scored,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictors::{LastOutcome, RandomGuess, SaturatingCounter, TwoLevel};
    use crate::streams::{IidStream, PeriodicStream, PersistentStream};

    const N: u64 = 20_000;

    #[test]
    fn everything_is_chance_on_iid_balanced_faults() {
        let mut stream = IidStream { bias: 0.5 };
        for p in [
            &mut RandomGuess::new(SmallRng::seed_from_u64(5)) as &mut dyn FaultPredictor,
            &mut LastOutcome::default(),
            &mut SaturatingCounter::default(),
            &mut TwoLevel::new(6),
        ] {
            let acc = measure_accuracy(p, &mut stream, N, 100, 1);
            assert!(
                (acc.p - 0.5).abs() < 0.02,
                "{}: p={} on iid faults",
                p.name(),
                acc.p
            );
        }
    }

    #[test]
    fn last_outcome_matches_persistence() {
        // On a Markov stream with persistence ρ, last-outcome's accuracy
        // is exactly ρ in expectation.
        for rho in [0.7, 0.9, 0.95] {
            let mut s = PersistentStream::new(rho);
            let mut p = LastOutcome::default();
            let acc = measure_accuracy(&mut p, &mut s, N, 100, 2);
            assert!((acc.p - rho).abs() < 0.02, "rho={rho}: p={}", acc.p);
        }
    }

    #[test]
    fn counter_beats_chance_on_biased_faults() {
        // One version fails 85% of the time: the counter should converge
        // to ~0.85 while random stays at 0.5.
        let mut s = IidStream { bias: 0.85 };
        let mut c = SaturatingCounter::default();
        let acc = measure_accuracy(&mut c, &mut s, N, 100, 3);
        assert!(acc.p > 0.8, "counter p={}", acc.p);
        let mut s2 = IidStream { bias: 0.85 };
        let mut r = RandomGuess::new(SmallRng::seed_from_u64(6));
        let accr = measure_accuracy(&mut r, &mut s2, N, 100, 3);
        assert!((accr.p - 0.5).abs() < 0.02, "random p={}", accr.p);
    }

    #[test]
    fn two_level_nails_periodic_patterns_counter_cannot() {
        let mut s1 = PeriodicStream::alternating();
        let mut tl = TwoLevel::new(4);
        let acc_tl = measure_accuracy(&mut tl, &mut s1, 1_000, 64, 4);
        assert!(acc_tl.p > 0.98, "two-level p={}", acc_tl.p);

        let mut s2 = PeriodicStream::alternating();
        let mut sc = SaturatingCounter::default();
        let acc_sc = measure_accuracy(&mut sc, &mut s2, 1_000, 64, 4);
        assert!(acc_sc.p < 0.75, "counter p={}", acc_sc.p);
    }

    #[test]
    fn accuracy_feeds_the_analytic_gain() {
        // End-to-end sanity: a predictor with measured p on a clustered
        // environment yields a larger analytic gain than random.
        let mut s = PersistentStream::new(0.9);
        let mut l = LastOutcome::default();
        let p_measured = measure_accuracy(&mut l, &mut s, N, 100, 5).p;
        let params = vds_analytic::Params::paper_default();
        let g_pred = vds_analytic::predictive::gbar_corr_exact(&params, p_measured);
        let g_rand = vds_analytic::predictive::gbar_corr_exact(&params, 0.5);
        assert!(g_pred > g_rand + 0.2, "g_pred={g_pred} g_rand={g_rand}");
    }

    #[test]
    fn warmup_is_excluded() {
        let mut s = PeriodicStream::alternating();
        let mut tl = TwoLevel::new(2);
        let acc = measure_accuracy(&mut tl, &mut s, 100, 0, 6);
        // without warmup the early learning noise lowers accuracy
        let mut s2 = PeriodicStream::alternating();
        let mut tl2 = TwoLevel::new(2);
        let acc_warm = measure_accuracy(&mut tl2, &mut s2, 100, 50, 6);
        assert!(acc_warm.p >= acc.p);
        assert_eq!(acc.n, 100);
        assert_eq!(acc_warm.n, 100);
    }
}
