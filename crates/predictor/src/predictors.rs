//! The predictor zoo.

use rand::rngs::SmallRng;
use rand::Rng as _;

/// Which of the two active versions is suspected/actually faulty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suspect {
    /// Version 1.
    V1,
    /// Version 2.
    V2,
}

impl Suspect {
    /// The other version.
    pub fn other(self) -> Suspect {
        match self {
            Suspect::V1 => Suspect::V2,
            Suspect::V2 => Suspect::V1,
        }
    }

    /// 0 for V1, 1 for V2.
    pub fn index(self) -> usize {
        match self {
            Suspect::V1 => 0,
            Suspect::V2 => 1,
        }
    }
}

/// A fault-version predictor. `predict` is consulted when a state
/// mismatch is detected; `update` is called after the majority vote
/// reveals the truth.
pub trait FaultPredictor {
    /// Name for reports.
    fn name(&self) -> &'static str;

    /// Which version do we believe is faulty?
    fn predict(&mut self) -> Suspect;

    /// Learn the vote's verdict.
    fn update(&mut self, actual: Suspect);
}

/// Uniform random guessing — the paper's p = ½ baseline ("our choice can
/// be random, so that the probability to choose the correct version is
/// 0.5").
pub struct RandomGuess {
    rng: SmallRng,
}

impl RandomGuess {
    /// Seeded constructor (determinism everywhere).
    pub fn new(rng: SmallRng) -> Self {
        RandomGuess { rng }
    }
}

impl FaultPredictor for RandomGuess {
    fn name(&self) -> &'static str {
        "random"
    }

    fn predict(&mut self) -> Suspect {
        if self.rng.gen() {
            Suspect::V1
        } else {
            Suspect::V2
        }
    }

    fn update(&mut self, _actual: Suspect) {}
}

/// Predict whichever version was faulty last time.
#[derive(Debug, Clone)]
pub struct LastOutcome {
    last: Suspect,
}

impl Default for LastOutcome {
    fn default() -> Self {
        LastOutcome { last: Suspect::V1 }
    }
}

impl FaultPredictor for LastOutcome {
    fn name(&self) -> &'static str {
        "last-outcome"
    }

    fn predict(&mut self) -> Suspect {
        self.last
    }

    fn update(&mut self, actual: Suspect) {
        self.last = actual;
    }
}

/// A 2-bit saturating counter over {strongly V1, weakly V1, weakly V2,
/// strongly V2} — the bimodal branch predictor transplanted to faults.
#[derive(Debug, Clone)]
pub struct SaturatingCounter {
    /// 0,1 → predict V1; 2,3 → predict V2.
    state: u8,
}

impl Default for SaturatingCounter {
    fn default() -> Self {
        SaturatingCounter { state: 1 }
    }
}

impl FaultPredictor for SaturatingCounter {
    fn name(&self) -> &'static str {
        "saturating-counter"
    }

    fn predict(&mut self) -> Suspect {
        if self.state >= 2 {
            Suspect::V2
        } else {
            Suspect::V1
        }
    }

    fn update(&mut self, actual: Suspect) {
        match actual {
            Suspect::V2 => self.state = (self.state + 1).min(3),
            Suspect::V1 => self.state = self.state.saturating_sub(1),
        }
    }
}

/// Two-level adaptive: the last `bits` outcomes index a table of 2-bit
/// counters (a gshare with no PC — there is only one "branch": which
/// version fails). Learns periodic patterns that defeat the counter.
#[derive(Debug, Clone)]
pub struct TwoLevel {
    history: usize,
    mask: usize,
    table: Vec<u8>,
}

impl TwoLevel {
    /// `bits` history bits → a `2^bits`-entry counter table.
    pub fn new(bits: u32) -> Self {
        assert!((1..=16).contains(&bits));
        TwoLevel {
            history: 0,
            mask: (1 << bits) - 1,
            table: vec![1; 1 << bits],
        }
    }
}

impl FaultPredictor for TwoLevel {
    fn name(&self) -> &'static str {
        "two-level"
    }

    fn predict(&mut self) -> Suspect {
        if self.table[self.history] >= 2 {
            Suspect::V2
        } else {
            Suspect::V1
        }
    }

    fn update(&mut self, actual: Suspect) {
        let e = &mut self.table[self.history];
        match actual {
            Suspect::V2 => *e = (*e + 1).min(3),
            Suspect::V1 => *e = e.saturating_sub(1),
        }
        self.history = ((self.history << 1) | actual.index()) & self.mask;
    }
}

/// A tournament (meta) predictor: runs two component predictors and a
/// 2-bit chooser that tracks which component has been right more often
/// lately — the Alpha 21264 scheme, transplanted to fault prediction.
/// The paper's §5 closes with "we may be able to apply more sophisticated
/// algorithms" since fault prediction runs in software on large time
/// scales; this is the natural next step above single predictors.
pub struct Tournament<A, B> {
    a: A,
    b: B,
    /// 0,1 → trust `a`; 2,3 → trust `b`.
    chooser: u8,
    last_a: Option<Suspect>,
    last_b: Option<Suspect>,
}

impl<A: FaultPredictor, B: FaultPredictor> Tournament<A, B> {
    /// Combine two predictors.
    pub fn new(a: A, b: B) -> Self {
        Tournament {
            a,
            b,
            chooser: 1,
            last_a: None,
            last_b: None,
        }
    }
}

impl<A: FaultPredictor, B: FaultPredictor> FaultPredictor for Tournament<A, B> {
    fn name(&self) -> &'static str {
        "tournament"
    }

    fn predict(&mut self) -> Suspect {
        let pa = self.a.predict();
        let pb = self.b.predict();
        self.last_a = Some(pa);
        self.last_b = Some(pb);
        if self.chooser >= 2 {
            pb
        } else {
            pa
        }
    }

    fn update(&mut self, actual: Suspect) {
        // train the chooser only when the components disagree
        if let (Some(pa), Some(pb)) = (self.last_a, self.last_b) {
            match (pa == actual, pb == actual) {
                (true, false) => self.chooser = self.chooser.saturating_sub(1),
                (false, true) => self.chooser = (self.chooser + 1).min(3),
                _ => {}
            }
        }
        self.a.update(actual);
        self.b.update(actual);
        self.last_a = None;
        self.last_b = None;
    }
}

/// Wrap any predictor with crash evidence: when the detection came with a
/// trap from one version, that version *is* the faulty one and the inner
/// predictor is bypassed (but still trained).
pub struct WithEvidence<P> {
    inner: P,
    evidence: Option<Suspect>,
}

impl<P: FaultPredictor> WithEvidence<P> {
    /// Wrap an inner predictor.
    pub fn new(inner: P) -> Self {
        WithEvidence {
            inner,
            evidence: None,
        }
    }

    /// Report crash evidence for the next prediction.
    pub fn set_evidence(&mut self, suspect: Suspect) {
        self.evidence = Some(suspect);
    }

    /// Clear any pending evidence.
    pub fn clear_evidence(&mut self) {
        self.evidence = None;
    }
}

impl<P: FaultPredictor> FaultPredictor for WithEvidence<P> {
    fn name(&self) -> &'static str {
        "with-evidence"
    }

    fn predict(&mut self) -> Suspect {
        match self.evidence {
            Some(s) => s,
            None => self.inner.predict(),
        }
    }

    fn update(&mut self, actual: Suspect) {
        self.inner.update(actual);
        self.evidence = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn suspect_other_and_index() {
        assert_eq!(Suspect::V1.other(), Suspect::V2);
        assert_eq!(Suspect::V2.other(), Suspect::V1);
        assert_eq!(Suspect::V1.index(), 0);
        assert_eq!(Suspect::V2.index(), 1);
    }

    #[test]
    fn random_is_roughly_balanced() {
        let mut p = RandomGuess::new(SmallRng::seed_from_u64(1));
        let v1 = (0..10_000).filter(|_| p.predict() == Suspect::V1).count();
        assert!((4_700..5_300).contains(&v1), "v1={v1}");
    }

    #[test]
    fn last_outcome_tracks() {
        let mut p = LastOutcome::default();
        p.update(Suspect::V2);
        assert_eq!(p.predict(), Suspect::V2);
        p.update(Suspect::V1);
        assert_eq!(p.predict(), Suspect::V1);
    }

    #[test]
    fn counter_has_hysteresis() {
        let mut p = SaturatingCounter::default();
        p.update(Suspect::V2);
        p.update(Suspect::V2);
        p.update(Suspect::V2);
        assert_eq!(p.predict(), Suspect::V2);
        p.update(Suspect::V1); // one contrary outcome
        assert_eq!(p.predict(), Suspect::V2, "hysteresis holds");
        p.update(Suspect::V1);
        p.update(Suspect::V1);
        assert_eq!(p.predict(), Suspect::V1);
    }

    #[test]
    fn two_level_learns_alternation() {
        let mut p = TwoLevel::new(4);
        let mut correct = 0;
        for k in 0..200 {
            let actual = if k % 2 == 0 { Suspect::V1 } else { Suspect::V2 };
            if p.predict() == actual && k >= 100 {
                correct += 1;
            }
            p.update(actual);
        }
        assert!(
            correct >= 95,
            "two-level alternation accuracy {correct}/100"
        );
    }

    #[test]
    fn tournament_tracks_the_better_component() {
        // counter wins on a constant-bias stream; two-level wins on
        // alternation — the tournament should approach the better one in
        // both regimes
        let run = |alternating: bool| -> (usize, usize, usize) {
            let mut t = Tournament::new(SaturatingCounter::default(), TwoLevel::new(4));
            let mut sc = SaturatingCounter::default();
            let mut tl = TwoLevel::new(4);
            let mut scores = (0usize, 0usize, 0usize);
            for k in 0..400u32 {
                let actual = if alternating {
                    if k % 2 == 0 {
                        Suspect::V1
                    } else {
                        Suspect::V2
                    }
                } else {
                    Suspect::V2
                };
                if k >= 100 {
                    scores.0 += usize::from(t.predict() == actual);
                    scores.1 += usize::from(sc.predict() == actual);
                    scores.2 += usize::from(tl.predict() == actual);
                } else {
                    let _ = t.predict();
                }
                t.update(actual);
                sc.update(actual);
                tl.update(actual);
            }
            scores
        };
        let (t_alt, _sc_alt, tl_alt) = run(true);
        assert!(
            t_alt + 10 >= tl_alt,
            "tournament {t_alt} vs two-level {tl_alt}"
        );
        let (t_bias, sc_bias, _tl_bias) = run(false);
        assert!(
            t_bias + 10 >= sc_bias,
            "tournament {t_bias} vs counter {sc_bias}"
        );
    }

    #[test]
    fn evidence_overrides_and_expires() {
        let mut p = WithEvidence::new(SaturatingCounter::default());
        // counter currently says V1
        assert_eq!(p.predict(), Suspect::V1);
        p.set_evidence(Suspect::V2);
        assert_eq!(p.predict(), Suspect::V2, "evidence wins");
        p.update(Suspect::V2);
        // evidence consumed; counter (now nudged) decides again
        assert_eq!(p.predict(), Suspect::V2);
        p.update(Suspect::V1);
        p.update(Suspect::V1);
        assert_eq!(p.predict(), Suspect::V1);
    }
}
