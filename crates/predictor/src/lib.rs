#![warn(missing_docs)]

//! # vds-predictor — predicting which version is faulty
//!
//! §4 of the paper conditions the roll-forward gain on `p`, the
//! probability of correctly guessing the *faulty* version; §5 proposes
//! improving `p` with "techniques similar to branch prediction in
//! microprocessors: we keep a history of faults … If a particular part of
//! the hardware is more likely to be affected by faults of this kind due
//! to process variations, this can be detected."
//!
//! This crate implements that idea:
//!
//! * [`predictors`] — random guess (the p = ½ floor), last-outcome,
//!   2-bit saturating counter, and a two-level (history-indexed) scheme —
//!   the same taxonomy as hardware branch predictors, but in software,
//!   because "we are operating on much larger time scales".
//! * [`predictors::WithEvidence`] — the crash-fault shortcut: "sometimes
//!   there is evidence that a particular version is most likely the
//!   faulty one, e.g. in the case of a crash fault".
//! * [`streams`] — synthetic faulty-version sequences: i.i.d., persistent
//!   (process-variation bias), and alternating, used to characterise each
//!   predictor's accuracy.
//! * [`eval`] — accuracy measurement; the measured `p` feeds directly
//!   into `vds_analytic::predictive::gbar_corr_exact`.

//! ```
//! use vds_predictor::eval::measure_accuracy;
//! use vds_predictor::predictors::LastOutcome;
//! use vds_predictor::streams::PersistentStream;
//!
//! // process-variation clustering: the same version keeps failing
//! let mut stream = PersistentStream::new(0.9);
//! let mut pred = LastOutcome::default();
//! let acc = measure_accuracy(&mut pred, &mut stream, 20_000, 100, 7);
//! assert!((acc.p - 0.9).abs() < 0.02); // p ≈ the persistence
//! ```

pub mod eval;
pub mod predictors;
pub mod streams;

pub use predictors::{FaultPredictor, Suspect};
