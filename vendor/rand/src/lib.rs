//! Vendored, zero-dependency subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the surface the workspace uses: [`rngs::SmallRng`]
//! (xoshiro256++ seeded through SplitMix64, matching upstream `rand` 0.8 on
//! 64-bit targets), the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`, `fill`), [`SeedableRng`] and [`seq::SliceRandom`]
//! (`shuffle`, `choose`). Streams are deterministic for a fixed seed.

/// Core random-number source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-size byte array for the provided RNGs).
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it with SplitMix64 (same
    /// derivation as upstream `rand`).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Sampling of a uniform value of `Self` from raw bits (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draw one uniformly-distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $w:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $w as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => u8, u16 => u16, u32 => u32, i8 => u8, i16 => u16, i32 => u32);

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1), as upstream.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can be sampled uniformly (`gen_range` argument).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(bounded_u64(rng, span) as i64) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(bounded_u64(rng, span + 1) as i64) as $t
            }
        }
    )*};
}
impl_range_int!(i8, i16, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        let x = self.start + (self.end - self.start) * u;
        // guard against rounding up to the excluded endpoint
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}
impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}
impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        let x = self.start + (self.end - self.start) * u;
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

/// Uniform integer in `[0, bound)` by widening multiply with rejection
/// (Lemire's method; unbiased).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

/// The user-facing extension trait.
pub trait Rng: RngCore {
    /// Uniform value of `T` over its `Standard` distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p must be in [0,1]");
        f64::sample_standard(self) < p
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete RNGs.
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind upstream `rand` 0.8's
    /// `SmallRng` on 64-bit platforms. Not cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // an all-zero state is a fixed point; nudge it
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            SmallRng { s }
        }
    }
}

pub mod seq {
    //! Sequence helpers.
    use super::{bounded_u64, RngCore};

    /// Slice extensions: `shuffle` and `choose`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element (`None` when empty).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[bounded_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

pub mod prelude {
    //! Common imports.
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng as _, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = r.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let z = r.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&z));
        }
    }

    #[test]
    fn range_distribution_covers_all_values() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        use super::seq::SliceRandom as _;
        let mut r = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(5);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
