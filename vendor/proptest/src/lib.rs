//! Vendored, zero-dependency subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this crate implements
//! the slice of proptest the workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`/`prop_flat_map`-free
//! composition, range and tuple strategies, [`collection::vec`],
//! [`prop_oneof!`], `Just`, `any::<T>()` and `prop::sample::Index`.
//!
//! Semantics differ from upstream in one deliberate way: there is no
//! shrinking. A failing case panics with the generating seed so it can be
//! replayed by fixing `PROPTEST_SEED`. Case count defaults to 64 and obeys
//! `PROPTEST_CASES`.

/// Internal deterministic RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// New generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. Unlike upstream there is no shrinking: `sample`
/// draws one value directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a boxed strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from alternatives; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end);
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi);
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end);
        let x = self.start + (self.end - self.start) * rng.unit_f64();
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + (hi - lo) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// `any::<T>()` support: the full domain of `T`.
pub trait Arbitrary: Sized {
    /// Draw a uniformly random value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy behind [`any`].
pub struct Any<T> {
    _marker: core::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full domain of `T` as a strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

pub mod collection {
    //! Collection strategies.
    use super::{Strategy, TestRng};

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    /// `vec(element, len_range)` — lengths uniform in the given range.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end);
        VecStrategy {
            element,
            min: len.start,
            max_exclusive: len.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max_exclusive - self.min) as u64;
            let n = self.min + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling helpers (`prop::sample`).
    use super::{Arbitrary, TestRng};

    /// An index into a not-yet-known-length collection.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolve against a concrete length (`len > 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// `prop::…` namespace alias, as re-exported by the upstream prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Number of cases per property (default 64, `PROPTEST_CASES` overrides).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Base seed for a named test (default derived from the name,
/// `PROPTEST_SEED` overrides to replay a failure).
pub fn base_seed(test_name: &str) -> u64 {
    if let Ok(v) = std::env::var("PROPTEST_SEED") {
        if let Ok(s) = v.parse() {
            return s;
        }
    }
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

/// Run `case` for [`cases()`] iterations with per-case seeds derived from
/// the test name; panics mention the seed for replay.
pub fn run_cases(test_name: &str, mut case: impl FnMut(&mut TestRng)) {
    let base = base_seed(test_name);
    for i in 0..cases() {
        let seed = base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = TestRng::new(seed);
        case(&mut rng);
    }
}

/// Declare property tests: each function's arguments are drawn from the
/// given strategies for every generated case.
#[macro_export]
macro_rules! proptest {
    ($( #[test] fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                $crate::run_cases(stringify!($name), |rng| {
                    $(let $arg = $crate::Strategy::sample(&$strat, rng);)*
                    $body
                });
            }
        )*
    };
}

/// Assert within a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice among strategy arms (unweighted).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

pub mod prelude {
    //! Common imports, mirroring upstream's prelude.
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        BoxedStrategy, Just, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in -5i32..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn map_and_tuple(pair in (0u8..4, 10u8..20).prop_map(|(a, b)| (a, b))) {
            prop_assert!(pair.0 < 4 && (10..20).contains(&pair.1));
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|x| x)]) {
            prop_assert!(v == 1 || v == 2 || v == 5 || v == 6);
        }

        #[test]
        fn vec_lengths(xs in prop::collection::vec(any::<u32>(), 1..8)) {
            prop_assert!(!xs.is_empty() && xs.len() < 8);
        }

        #[test]
        fn sample_index(idx in any::<prop::sample::Index>()) {
            prop_assert!(idx.index(10) < 10);
        }
    }

    #[test]
    fn deterministic_for_fixed_name() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        super::run_cases("fixed", |rng| a.push(rng.next_u64()));
        super::run_cases("fixed", |rng| b.push(rng.next_u64()));
        assert_eq!(a, b);
    }
}
