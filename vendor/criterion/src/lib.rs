//! Vendored, zero-dependency subset of the `criterion` API.
//!
//! The build environment has no crates.io access; this stand-in keeps the
//! workspace's benchmarks compiling and gives useful (if statistically
//! modest) numbers: every benchmark runs a short calibrated loop and
//! reports the mean wall-clock time per iteration plus throughput when
//! declared. Under `cargo test` (or with `--test` in the arguments) each
//! benchmark executes exactly one iteration as a smoke test.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier, preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared work per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just a parameter (group name provides the prefix).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to the closure under test; `iter` runs and times the payload.
pub struct Bencher<'a> {
    measured: &'a mut Duration,
    iters: &'a mut u64,
    smoke_test: bool,
}

impl Bencher<'_> {
    /// Time `routine`, storing the aggregate for the caller to report.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke_test {
            let start = Instant::now();
            black_box(routine());
            *self.measured = start.elapsed();
            *self.iters = 1;
            return;
        }
        // Calibrate: grow the batch until it takes ~10ms, then measure.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || batch >= 1 << 20 {
                *self.measured = elapsed;
                *self.iters = batch;
                return;
            }
            batch *= 2;
        }
    }
}

fn fmt_duration(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.2} s ", ns / 1_000_000_000.0)
    }
}

fn report(id: &str, measured: Duration, iters: u64, throughput: Option<Throughput>) {
    if iters == 0 {
        return;
    }
    let per_iter_ns = measured.as_secs_f64() * 1e9 / iters as f64;
    let mut line = format!("{id:<44} {}  ({iters} iters)", fmt_duration(per_iter_ns));
    if let Some(tp) = throughput {
        let per_sec = match tp {
            Throughput::Elements(n) => n as f64 / (per_iter_ns / 1e9),
            Throughput::Bytes(n) => n as f64 / (per_iter_ns / 1e9),
        };
        let unit = match tp {
            Throughput::Elements(_) => "elem/s",
            Throughput::Bytes(_) => "B/s",
        };
        line.push_str(&format!("  {per_sec:12.0} {unit}"));
    }
    println!("{line}");
}

/// The benchmark driver.
pub struct Criterion {
    smoke_test: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` passes `--test`; keep that mode to one iteration.
        let smoke_test = std::env::args().any(|a| a == "--test")
            || std::env::var("CRITERION_SMOKE_TEST").is_ok();
        Criterion { smoke_test }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        f(&mut Bencher {
            measured: &mut measured,
            iters: &mut iters,
            smoke_test: self.smoke_test,
        });
        report(&id.to_string(), measured, iters, None);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this driver sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        f(
            &mut Bencher {
                measured: &mut measured,
                iters: &mut iters,
                smoke_test: self.criterion.smoke_test,
            },
            input,
        );
        report(
            &format!("{}/{id}", self.name),
            measured,
            iters,
            self.throughput,
        );
        self
    }

    /// Benchmark without an input value.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        f(&mut Bencher {
            measured: &mut measured,
            iters: &mut iters,
            smoke_test: self.criterion.smoke_test,
        });
        report(
            &format!("{}/{id}", self.name),
            measured,
            iters,
            self.throughput,
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` running the declared groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion { smoke_test: true };
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }
}
