#![warn(missing_docs)]

//! # vds — virtual duplex systems on simultaneous multithreaded processors
//!
//! Umbrella crate for the reproduction of Fechner, Keller & Sobe,
//! *"Performance Estimation of Virtual Duplex Systems on Simultaneous
//! Multithreaded Processors"* (IPDPS 2004 workshops). Re-exports every
//! subsystem crate under one roof:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`core`] | `vds-core` | the VDS engines (abstract + micro), schemes, flow charts |
//! | [`analytic`] | `vds-analytic` | the paper's closed-form model, Eqs. (1)–(14) |
//! | [`smtsim`] | `vds-smtsim` | cycle-level SMT processor, ISA, assembler, kernels |
//! | [`sched`] | `vds-sched` | OS processes, address spaces, context switching |
//! | [`fault`] | `vds-fault` | fault models, injection, EDC codes, campaigns |
//! | [`diversity`] | `vds-diversity` | automatic diverse-version generation |
//! | [`checkpoint`] | `vds-checkpoint` | snapshots, digests, stable storage |
//! | [`predictor`] | `vds-predictor` | fault-version prediction (§4/§5) |
//! | [`desim`] | `vds-desim` | discrete-event engine, statistics, timelines |
//! | [`obs`] | `vds-obs` | deterministic metrics, event traces, profiler spans |
//!
//! ## Quick start
//!
//! ```
//! use vds::analytic::{predictive, Params};
//! use vds::core::abstract_vds::{run, AbstractConfig};
//! use vds::core::{FaultModel, Scheme};
//!
//! // the paper's operating point: α = 0.65, β = 0.1, s = 20
//! let params = Params::paper_default();
//!
//! // closed form: expected recovery gain with random picks ≈ 1.38
//! let g = predictive::g_max(0.65, 0.1, 0.5);
//! assert!((g - 1.38).abs() < 0.01);
//!
//! // and the executable VDS agrees that SMT normal processing is faster
//! let conv = run(
//!     &AbstractConfig::new(params, Scheme::Conventional),
//!     FaultModel::None,
//!     100,
//!     1,
//! );
//! let smt = run(
//!     &AbstractConfig::new(params, Scheme::SmtPredictive),
//!     FaultModel::None,
//!     100,
//!     1,
//! );
//! assert!(smt.total_time < conv.total_time);
//! ```

pub use vds_analytic as analytic;
pub use vds_checkpoint as checkpoint;
pub use vds_core as core;
pub use vds_desim as desim;
pub use vds_diversity as diversity;
pub use vds_fault as fault;
pub use vds_obs as obs;
pub use vds_predictor as predictor;
pub use vds_sched as sched;
pub use vds_smtsim as smtsim;
pub use vds_sweep as sweep;
