//! Cross-backend consistency: the micro platform, measured in cycles,
//! must obey the paper's timing model with its *own* measured parameters
//! (t, c, t', α) — closing the loop between the cycle-level machine and
//! the closed forms.

use vds::analytic::{timing, Params};
use vds::core::micro_vds::{run_micro, MicroConfig};
use vds::core::{workload, Scheme};
use vds::smtsim::core::{Core, CoreConfig, RunOutcome, ThreadState};

/// Cycles for one version to execute `rounds` rounds alone.
fn solo_cycles(prog: &vds::smtsim::program::Program, rounds: u32) -> u64 {
    let mut core = Core::new(CoreConfig::single_threaded());
    let t = core.add_thread(prog, workload::DMEM_WORDS);
    for _ in 0..rounds {
        assert_eq!(
            core.run_until_all_blocked(10_000_000),
            RunOutcome::AllYielded
        );
        core.resume(t);
    }
    core.cycles()
}

/// Cycles for two versions to co-run `rounds` rounds each on a 2-way core.
fn pair_cycles(
    a: &vds::smtsim::program::Program,
    b: &vds::smtsim::program::Program,
    rounds: u32,
) -> u64 {
    let mut core = Core::new(CoreConfig::default());
    let ta = core.add_thread(a, workload::DMEM_WORDS);
    let tb = core.add_thread(b, workload::DMEM_WORDS);
    for _ in 0..rounds {
        assert_eq!(
            core.run_until_all_blocked(10_000_000),
            RunOutcome::AllYielded
        );
        for t in [ta, tb] {
            if core.thread(t).state == ThreadState::Yielded {
                core.resume(t);
            }
        }
    }
    core.cycles()
}

#[test]
fn micro_round_times_obey_the_papers_model() {
    // Measure the model parameters from the machine itself…
    let base = workload::build(1_000);
    let v1 = vds::diversity::diversify(&base, 1, 2024);
    let v2 = vds::diversity::diversify(&base, 2, 2024);
    let rounds = 40u32;
    let t1 = solo_cycles(&v1, rounds) as f64 / f64::from(rounds);
    let t2 = solo_cycles(&v2, rounds) as f64 / f64::from(rounds);
    let t = 0.5 * (t1 + t2); // per-version round time
    let pair = pair_cycles(&v1, &v2, rounds) as f64 / f64::from(rounds);
    let alpha = (pair / (2.0 * t)).clamp(0.5, 1.0);

    // …and predict the VDS round times from the closed forms.
    let cfg = MicroConfig::new(Scheme::SmtProbabilistic, 1_000); // no ckpt in range
    let params = Params {
        t,
        c: f64::from(cfg.ctx_switch_cycles),
        t_cmp: f64::from(cfg.cmp_cycles),
        alpha,
        s: 1_000,
    };
    let n = 40u64;
    let conv = run_micro(&MicroConfig::new(Scheme::Conventional, 1_000), None, n);
    let smt = run_micro(&cfg, None, n);
    let conv_round = conv.total_time / n as f64;
    let smt_round = smt.total_time / n as f64;

    let pred_conv = timing::t1_round(&params);
    let pred_smt = timing::tht2_round(&params);
    let err_conv = (conv_round - pred_conv).abs() / pred_conv;
    let err_smt = (smt_round - pred_smt).abs() / pred_smt;
    assert!(
        err_conv < 0.15,
        "conventional round: measured {conv_round:.1} vs model {pred_conv:.1} cycles"
    );
    assert!(
        err_smt < 0.15,
        "SMT round: measured {smt_round:.1} vs model {pred_smt:.1} cycles"
    );

    // and the measured end-to-end gain tracks Eq. (4) with the measured α
    let gain = conv.total_time / smt.total_time;
    let pred_gain = timing::g_round_exact(&params);
    assert!(
        (gain - pred_gain).abs() / pred_gain < 0.15,
        "gain: measured {gain:.3} vs Eq.(4) {pred_gain:.3} (α={alpha:.3}, t={t:.0})"
    );
}

#[test]
fn abstract_and_micro_agree_on_scheme_ordering() {
    // Fault-free throughput: SMT schemes beat conventional on both
    // backends; among SMT schemes fault-free timing is identical on the
    // abstract backend and near-identical on the micro backend.
    let n = 30u64;
    let micro_conv = run_micro(&MicroConfig::new(Scheme::Conventional, 10), None, n);
    let micro_smt = run_micro(&MicroConfig::new(Scheme::SmtProbabilistic, 10), None, n);
    assert!(micro_smt.total_time < micro_conv.total_time);

    use vds::core::abstract_vds::{run, AbstractConfig};
    use vds::core::FaultModel;
    let p = Params::paper_default();
    let a_conv = run(
        &AbstractConfig::new(p, Scheme::Conventional),
        FaultModel::None,
        n,
        1,
    );
    let a_smt = run(
        &AbstractConfig::new(p, Scheme::SmtProbabilistic),
        FaultModel::None,
        n,
        1,
    );
    assert!(a_smt.total_time < a_conv.total_time);
}
