//! Property-based tests of the fault-forensics layer: the report built
//! from a campaign journal is byte-identical regardless of the worker
//! count that produced the recording, and the escape list only names
//! faults that were actually injected and never detected.

use proptest::prelude::*;
use vds::analytic::Params;
use vds::core::abstract_vds::{run_with_recorder, AbstractConfig};
use vds::core::{FaultModel, Scheme};
use vds::fault::campaign::{run_campaign_journaled, TrialResult};
use vds::obs::journal::Verdict;
use vds::obs::{ForensicsTracker, Journal, JournalHeader, Recorder};

/// One journaled abstract-VDS trial under `scheme`, the shape every
/// campaign uses: run with a private recorder, merge the registry,
/// adopt the journal under the trial's lane. A heavy per-round fault
/// rate keeps all three lifecycle classes (detected / masked /
/// escaped) reachable — the predictive scheme can silently adopt
/// corrupted state, which is exactly what the escape list must report.
fn forensic_trial(
    scheme: Scheme,
    i: u64,
    seed: u64,
    rounds: u64,
    rec: &mut Recorder,
) -> TrialResult {
    let cfg = AbstractConfig::new(Params::paper_default(), scheme);
    let mut run_rec = Recorder::new();
    if let Some(h) = rec.journal().header() {
        run_rec.enable_journal(h.clone());
    }
    let (report, run_rec) = run_with_recorder(
        &cfg,
        FaultModel::PerRound { q: 0.15 },
        rounds,
        seed.wrapping_add(i.wrapping_mul(0x9E37_79B9)),
        run_rec,
    );
    rec.merge_registry(run_rec.registry());
    rec.adopt_journal(run_rec.journal(), i);
    TrialResult::with_value(
        if report.shutdown {
            "shutdown"
        } else {
            "survived"
        },
        report.detections as f64,
    )
}

fn arb_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::SmtDeterministic),
        Just(Scheme::SmtProbabilistic),
        Just(Scheme::SmtPredictive),
    ]
}

proptest! {
    // The acceptance pin: for any seed, trial count and scheme, the
    // forensics report (text and JSON forms) priced from the merged
    // campaign journal is byte-identical across worker counts 1 and 8
    // — the report depends only on the journal bytes.
    #[test]
    fn forensics_report_is_byte_identical_across_workers(
        seed in 0u64..1_000,
        trials in 1u64..6,
        rounds in 10u64..40,
        scheme in arb_scheme(),
    ) {
        let header = JournalHeader::new("campaign", scheme.name(), seed, 20, rounds)
            .with_meta("trials", &trials.to_string());
        let run = |workers: usize| {
            run_campaign_journaled("forensics", trials, workers, None, &header, |i, rec| {
                forensic_trial(scheme, i, seed, rounds, rec)
            })
        };
        let (r1, rec1) = run(1);
        let (r8, rec8) = run(8);
        prop_assert_eq!(&r1, &r8);
        let bytes = rec1.journal().to_jsonl();
        prop_assert_eq!(&rec8.journal().to_jsonl(), &bytes);

        let t1 = ForensicsTracker::for_journal(rec1.journal()).expect("tracker");
        let t8 = ForensicsTracker::for_journal(rec8.journal()).expect("tracker");
        let (rep1, rep8) = (t1.report(), t8.report());
        prop_assert_eq!(rep1.render_text(), rep8.render_text());
        prop_assert_eq!(rep1.to_json(), rep8.to_json());
        // and re-parsing the serialised journal prices identically too
        let reparsed = Journal::from_jsonl(&bytes).expect("parse");
        let t = ForensicsTracker::for_journal(&reparsed).expect("tracker");
        prop_assert_eq!(t.report().to_json(), rep1.to_json());
    }

    // Escape-list validity: every (lane, fault_id) the report lists as
    // escaped was actually injected (a journal entry on that lane
    // carries that fault_id and a fault spec) and never detected (no
    // divergent verdict at or after the injecting entry on its lane).
    #[test]
    fn escape_list_names_only_injected_never_detected_faults(
        seed in 0u64..1_000,
        trials in 1u64..5,
        rounds in 10u64..40,
        scheme in arb_scheme(),
    ) {
        let header = JournalHeader::new("campaign", scheme.name(), seed, 20, rounds)
            .with_meta("trials", &trials.to_string());
        let (_, rec) =
            run_campaign_journaled("forensics", trials, 4, None, &header, |i, rec| {
                forensic_trial(scheme, i, seed, rounds, rec)
            });
        let journal = rec.journal();
        let tracker = ForensicsTracker::for_journal(journal).expect("tracker");
        let report = tracker.report();
        // lifecycle conservation over the journal's fault events
        prop_assert_eq!(
            report.detected + report.masked + report.escaped,
            report.injected
        );
        prop_assert_eq!(report.escaped as usize, report.escapes.len());
        for esc in &report.escapes {
            let lane: Vec<_> = journal
                .entries()
                .iter()
                .filter(|e| e.lane == esc.lane)
                .collect();
            let idx = lane
                .iter()
                .position(|e| e.fault_id == Some(esc.fault_id) && e.fault.is_some());
            // injected: the (lane, fault_id) pair exists and carries a
            // fault spec matching the report
            prop_assert!(idx.is_some(), "escape {esc:?} was never injected");
            let idx = idx.unwrap();
            prop_assert_eq!(&lane[idx].fault.clone().unwrap(), &esc.spec);
            prop_assert_eq!(lane[idx].round, esc.injected_round);
            // never detected: every verdict from the injection to the
            // end of the lane is a clean match
            prop_assert!(
                lane[idx..].iter().all(|e| e.verdict == Verdict::Match),
                "escape {esc:?} was detected after injection"
            );
        }
    }
}
