//! Cross-crate integration tests pinning every quantitative claim the
//! paper makes, end-to-end through the umbrella crate.

use vds::analytic::{multithread, predictive, rollforward, timing, Params};
use vds::core::abstract_vds::{run, AbstractConfig};
use vds::core::gain::average_incident_gain;
use vds::core::{FaultModel, Scheme};

const PAPER: fn() -> Params = Params::paper_default;

#[test]
fn claim_eq4_normal_processing_speedup_is_roughly_inverse_alpha() {
    // "This means that in normal processing periods a speedup of G_round
    // is obtained … ≈ 1/α if c, t' ≪ t"
    for &alpha in &[0.5, 0.65, 0.8, 1.0] {
        let p = Params::with_beta(alpha, 0.01, 20);
        let g = timing::g_round_exact(&p);
        assert!((g - 1.0 / alpha).abs() < 0.06, "α={alpha}: {g}");
    }
}

#[test]
fn claim_pentium4_alpha_from_reported_35_percent_gain() {
    // "runtime reduction up to 35% has been reported" ⇒ α = 0.65; the
    // exact G_round at the paper point is 2.3/1.4.
    let p = PAPER();
    assert!((timing::g_round_exact(&p) - 2.3 / 1.4).abs() < 1e-12);
}

#[test]
fn claim_eq7_deterministic_threshold_0_723() {
    // "The gain of the deterministic scheme is larger than one for
    // α < 0.723, i.e. a medium utilization of the processor suffices"
    let thr = rollforward::det_alpha_threshold();
    assert!((thr - 0.723).abs() < 5e-4);
    assert!(rollforward::gbar_det_approx(&Params::with_beta(0.70, 0.0, 20)) > 1.0);
    assert!(rollforward::gbar_det_approx(&Params::with_beta(0.75, 0.0, 20)) < 1.0);
}

#[test]
fn claim_p_half_makes_prob_and_det_equal() {
    // "For p = 0.5, a random choice, both expressions (7) and (8) have
    // approximately equal values"
    let p = PAPER();
    let det = rollforward::gbar_det_approx(&p);
    let prob = rollforward::gbar_prob_approx(&p, 0.5);
    assert!((det - prob).abs() / det < 0.03, "det={det} prob={prob}");
    // "For p > 0.5, the probabilistic scheme provides a larger gain."
    assert!(rollforward::gbar_prob_approx(&p, 0.75) > det);
}

#[test]
fn claim_predictive_dominates_for_p_at_least_half() {
    // "Ḡ_corr > Ḡ_prob, Ḡ_det if p ≥ 0.5 … this improvement will on
    // average perform better in the case of a fault than the previous
    // ones"
    let p = PAPER();
    for &pc in &[0.5, 0.7, 0.9, 1.0] {
        let corr = predictive::gbar_corr_approx(&p, pc);
        assert!(corr > rollforward::gbar_prob_approx(&p, pc), "p={pc}");
        assert!(corr > rollforward::gbar_det_approx(&p), "p={pc}");
    }
}

#[test]
fn claim_gain_thresholds_of_section_4_3() {
    // "for p ≥ (α − 0.5)/ln2 the gain is at least one"
    for &alpha in &[0.6, 0.7, 0.8] {
        let p_min = predictive::p_threshold(alpha);
        let params = Params::with_beta(alpha, 0.0, 20);
        assert!(predictive::gbar_corr_approx(&params, p_min + 0.02) > 1.0);
        assert!(predictive::gbar_corr_approx(&params, p_min - 0.02) < 1.0);
    }
    // "In the best case α = 0.5, we always gain no matter how bad our
    // guesses are."
    assert_eq!(predictive::p_threshold(0.5), 0.0);
    let best = Params::with_beta(0.5, 0.0, 20);
    assert!(predictive::gbar_corr_approx(&best, 0.0) >= 1.0);
    // "For random guesses (p = 0.5) we gain for α ≤ (1 + ln2)/2 ≈ 0.847"
    assert!((predictive::alpha_threshold_for_p(0.5) - 0.8466).abs() < 1e-3);
}

#[test]
fn claim_g_max_1_38_and_robustness() {
    // "If we pessimistically set p = 0.5, we get an acceleration of
    // G_max ≈ 1.38 over the non-hyperthreaded version."
    assert!((predictive::g_max(0.65, 0.1, 0.5) - 1.38).abs() < 0.01);
    // "Even if … multithreading improved execution time by less than 10
    // percent … we still would not lose as G_max ≈ 1.0."
    let weak = predictive::g_max(0.95, 0.1, 0.5);
    assert!(weak >= 0.93, "weak-multithreading G_max = {weak}");
}

#[test]
fn claim_s20_close_to_limit() {
    // "beyond s = 20, Ḡ_corr is already very close to the limit"
    let lim = predictive::g_max(0.65, 0.1, 0.5);
    let g20 = predictive::gbar_corr_exact(&PAPER(), 0.5);
    assert!((lim - g20).abs() / lim < 0.03, "{g20} vs {lim}");
}

#[test]
fn claim_clock_reduction_by_factor_alpha() {
    // "we could employ a multithreaded processor with a clock frequency
    // reduced by a factor of at least 1/α"
    let p = Params::with_beta(0.65, 0.0, 20);
    let ratio = multithread::equal_performance_clock_ratio(&p);
    assert!((ratio - 0.65).abs() < 1e-12);
}

#[test]
fn engine_reproduces_the_headline_gain() {
    // The executable VDS measures the paper's figures rather than just
    // re-evaluating formulas: expected recovery gain at the paper point.
    let cfg = AbstractConfig::new(PAPER(), Scheme::SmtPredictive);
    let g = average_incident_gain(&cfg, 0.5);
    assert!((g - 1.38).abs() < 0.06, "engine-measured gain {g}");
}

#[test]
fn end_to_end_smt_always_at_least_as_good_under_faults() {
    // Long stochastic runs: the SMT VDS (any scheme) should not lose to
    // the conventional one in throughput for the paper's α.
    let n = 5_000;
    let fm = FaultModel::PerRound { q: 0.02 };
    let conv = run(
        &AbstractConfig::new(PAPER(), Scheme::Conventional),
        fm,
        n,
        11,
    );
    for scheme in [
        Scheme::SmtDeterministic,
        Scheme::SmtProbabilistic,
        Scheme::SmtPredictive,
    ] {
        let smt = run(&AbstractConfig::new(PAPER(), scheme), fm, n, 11);
        assert!(
            smt.throughput() > conv.throughput(),
            "{scheme:?}: {} vs {}",
            smt.throughput(),
            conv.throughput()
        );
    }
}

#[test]
fn end_to_end_gain_between_g_round_and_g_round_times_g_corr() {
    // Under faults the blended throughput gain must sit between the pure
    // normal-processing gain (fault-dominated recovery is rare) and the
    // recovery-phase gain — both favour SMT at the paper point.
    let n = 20_000;
    let fm = FaultModel::PerRound { q: 0.01 };
    let conv = run(
        &AbstractConfig::new(PAPER(), Scheme::Conventional),
        fm,
        n,
        5,
    );
    let smt = run(
        &AbstractConfig::new(PAPER(), Scheme::SmtPredictive),
        fm,
        n,
        5,
    );
    let blended = smt.throughput() / conv.throughput();
    let g_round = timing::g_round_exact(&PAPER());
    assert!(
        blended > 1.2 && blended < g_round * 1.3,
        "blended gain {blended}, g_round {g_round}"
    );
}
