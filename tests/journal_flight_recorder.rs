//! Property-based tests of the execution flight recorder: JSONL
//! round-trips are lossless, campaign journals are byte-identical
//! regardless of worker count, and first-divergence search pinpoints the
//! exact entry a single flipped digest bit lives in.

use proptest::collection::vec;
use proptest::prelude::*;
use vds::analytic::Params;
use vds::core::abstract_vds::{run_with_recorder, AbstractConfig};
use vds::core::{FaultModel, Scheme};
use vds::fault::campaign::{run_campaign_journaled, TrialResult};
use vds::obs::{Action, Digest128, Journal, JournalHeader, Recorder, RoundEntry, Verdict};

/// The canonical spec/sched alphabet: no JSON escapes needed, which keeps
/// these serializer tests rather than JSON-escaping tests.
const LABEL_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789:@,._[]-";

fn arb_label() -> impl Strategy<Value = String> {
    vec(0usize..LABEL_CHARS.len(), 0..16)
        .prop_map(|ix| ix.into_iter().map(|i| LABEL_CHARS[i] as char).collect())
}

fn arb_digest() -> impl Strategy<Value = Digest128> {
    (any::<u64>(), any::<u64>()).prop_map(|(fnv, mix)| Digest128 { fnv, mix })
}

fn arb_verdict() -> impl Strategy<Value = Verdict> {
    prop_oneof![
        Just(Verdict::Match),
        Just(Verdict::Mismatch),
        Just(Verdict::Trap),
        Just(Verdict::Hang),
    ]
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        Just(Action::Commit),
        Just(Action::Checkpoint),
        Just(Action::Recover),
        Just(Action::Rollback),
        Just(Action::Shutdown),
    ]
}

fn arb_entry() -> impl Strategy<Value = RoundEntry> {
    (
        // quarter-cycle sim times are exactly representable, so they
        // print and parse back exactly
        (0u64..64, 1u64..10_000, 0u64..1_000_000, 0u64..4_000_000),
        (
            arb_digest(),
            arb_digest(),
            arb_verdict(),
            arb_label(),
            arb_action(),
            0u32..32,
        ),
        (
            any::<bool>(),
            arb_label(),
            prop_oneof![Just(None), (0u64..1_000).prop_map(Some)],
            prop_oneof![Just(None), Just(Some("masked")), Just(Some("escaped"))],
        ),
    )
        .prop_map(
            |(
                (lane, round, committed, quarters),
                (d1, d2, verdict, sched, action, rollforward),
                (has_fault, fault, fault_id, fault_outcome),
            )| {
                RoundEntry {
                    seq: 0, // assigned by Journal::push
                    lane,
                    round,
                    committed,
                    sim_time: quarters as f64 * 0.25,
                    d1,
                    d2,
                    verdict,
                    sched,
                    action,
                    rollforward,
                    // fault_id / fault_outcome only accompany a fault
                    // spec, as the engines write them
                    fault_id: has_fault.then_some(fault_id.unwrap_or(0)),
                    fault_outcome: if has_fault {
                        fault_outcome.map(str::to_string)
                    } else {
                        None
                    },
                    fault: has_fault.then_some(fault),
                }
            },
        )
}

fn arb_journal(entries: std::ops::Range<usize>) -> impl Strategy<Value = Journal> {
    (
        (
            arb_label(),
            arb_label(),
            any::<u64>(),
            1u32..100,
            1u64..100_000,
        ),
        vec((arb_label(), arb_label()), 0..4),
        vec(arb_entry(), entries),
    )
        .prop_map(|((backend, scheme, seed, s, target), meta, entries)| {
            let mut h = JournalHeader::new(&backend, &scheme, seed, s, target);
            for (k, v) in meta {
                h = h.with_meta(&k, &v);
            }
            let mut j = Journal::enabled(h);
            for e in entries {
                j.push(e);
            }
            j
        })
}

proptest! {
    // Serialise → parse is the identity on journals.
    #[test]
    fn jsonl_roundtrip_is_lossless(j in arb_journal(0..40)) {
        let text = j.to_jsonl();
        let parsed = Journal::from_jsonl(&text).expect("parse back");
        prop_assert_eq!(&parsed, &j);
        // and serialisation is stable across the round-trip
        prop_assert_eq!(parsed.to_jsonl(), text);
    }

    // A journal identical to itself has no divergence; appending any
    // entry to a copy is caught as a length divergence at the old end.
    #[test]
    fn self_diff_is_clean_and_extension_is_caught(
        j in arb_journal(0..40),
        extra in arb_entry(),
    ) {
        prop_assert!(j.first_divergence(&j).is_none());
        let mut longer = j.clone();
        longer.push(extra);
        let d = j.first_divergence(&longer).expect("length divergence");
        prop_assert_eq!(d.index, j.len());
        prop_assert_eq!(d.field.as_str(), "length");
    }

    // Flipping a single bit of a single digest in the serialised form
    // is pinpointed to exactly that entry, lane, round and digest field.
    #[test]
    fn single_bit_corruption_is_pinpointed(
        j in arb_journal(1..40),
        pick in any::<proptest::sample::Index>(),
        second_digest in any::<bool>(),
        bit in 0usize..128,
    ) {
        let k = pick.index(j.len());
        let text = j.to_jsonl();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        // line 0 is the header; entry k is line k + 1
        let line = &lines[k + 1];
        let field = if second_digest { "\"d2\":\"" } else { "\"d1\":\"" };
        let pos = line.find(field).unwrap() + field.len() + bit / 4;
        let old = (line.as_bytes()[pos] as char).to_digit(16).unwrap();
        let flipped = char::from_digit(old ^ (1 << (bit % 4)), 16).unwrap();
        let mut corrupted = line.clone();
        corrupted.replace_range(pos..pos + 1, &flipped.to_string());
        lines[k + 1] = corrupted;
        let bad = Journal::from_jsonl(&(lines.join("\n") + "\n")).expect("parse");

        let d = j.first_divergence(&bad).expect("must diverge");
        let e = &j.entries()[k];
        prop_assert_eq!(d.index, k);
        prop_assert_eq!(d.lane, e.lane);
        prop_assert_eq!(d.round, e.round);
        let expect = if second_digest {
            "d2 (version 2 digest)"
        } else {
            "d1 (version 1 digest)"
        };
        prop_assert_eq!(d.field.as_str(), expect);
        // symmetric: the other direction finds the same entry
        let rev = bad.first_divergence(&j).expect("must diverge");
        prop_assert_eq!(rev.index, k);
    }

    // The acceptance pin: for any seed and trial count, the merged
    // campaign journal is byte-identical across worker counts 1, 2, 4.
    #[test]
    fn campaign_journal_is_byte_identical_across_workers(
        seed in 0u64..1_000,
        trials in 1u64..6,
        rounds in 10u64..40,
    ) {
        let header = JournalHeader::new("campaign", "smt-prob", seed, 20, rounds)
            .with_meta("trials", &trials.to_string());
        let run = |workers: usize| {
            run_campaign_journaled("prop", trials, workers, None, &header, |i, rec| {
                abstract_trial(i, seed, rounds, rec)
            })
        };
        let (r1, rec1) = run(1);
        let (r2, rec2) = run(2);
        let (r4, rec4) = run(4);
        prop_assert_eq!(&r1, &r2);
        prop_assert_eq!(&r1, &r4);
        let bytes = rec1.journal().to_jsonl();
        prop_assert_eq!(&rec2.journal().to_jsonl(), &bytes);
        prop_assert_eq!(&rec4.journal().to_jsonl(), &bytes);
        // entries exist and lanes are sorted by trial index after merge
        prop_assert!(!rec1.journal().is_empty());
        let lanes: Vec<u64> = rec1.journal().entries().iter().map(|e| e.lane).collect();
        let mut sorted = lanes.clone();
        sorted.sort_unstable();
        prop_assert_eq!(lanes, sorted);
        // and the parsed form of the merged journal round-trips too
        let parsed = Journal::from_jsonl(&bytes).expect("parse");
        prop_assert_eq!(parsed.to_jsonl(), bytes);
    }
}

/// A small deterministic journal for the edge-case tests below; `tweak`
/// may perturb an entry before it is pushed.
fn sample_journal_with(entries: usize, tweak: impl Fn(usize, &mut RoundEntry)) -> Journal {
    let mut j = Journal::enabled(JournalHeader::new("micro", "smt-det", 1, 10, 30));
    for i in 0..entries {
        let mut e = RoundEntry {
            seq: 0,
            lane: 0,
            round: i as u64 + 1,
            committed: i as u64,
            sim_time: i as f64 * 0.25,
            d1: Digest128 {
                fnv: 0x1111 + i as u64,
                mix: 0x2222,
            },
            d2: Digest128 {
                fnv: 0x1111 + i as u64,
                mix: 0x2222,
            },
            verdict: Verdict::Match,
            sched: "rr".into(),
            action: Action::Commit,
            rollforward: 0,
            fault: None,
            fault_id: None,
            fault_outcome: None,
        };
        tweak(i, &mut e);
        j.push(e);
    }
    j
}

fn sample_journal(entries: usize) -> Journal {
    sample_journal_with(entries, |_, _| {})
}

// ---- first_divergence edge cases: the binary search has its own
// boundary arithmetic at k = 0 and common = 0, pin all of it ----

#[test]
fn divergence_in_the_very_first_entry_reports_index_zero() {
    let a = sample_journal(5);
    let b = sample_journal_with(5, |i, e| {
        if i == 0 {
            e.d2.mix ^= 1;
        }
    });
    let d = a.first_divergence(&b).expect("must diverge");
    assert_eq!(d.index, 0, "{d:?}");
    assert_eq!(d.round, 1);
    assert_eq!(d.field, "d2 (version 2 digest)");
    // symmetric
    let rev = b.first_divergence(&a).expect("must diverge");
    assert_eq!(rev.index, 0);
}

#[test]
fn header_only_mismatch_wins_over_identical_entries() {
    let a = sample_journal(3);
    let mut b = Journal::enabled(JournalHeader::new("micro", "smt-prob", 1, 10, 30));
    for e in a.entries() {
        let mut e = e.clone();
        e.seq = 0; // reassigned by push
        b.push(e);
    }
    let d = a.first_divergence(&b).expect("headers differ");
    assert_eq!(d.field, "header", "{d:?}");
    assert_eq!(d.index, 0);
    assert!(d.a.contains("smt-det"), "{}", d.a);
    assert!(d.b.contains("smt-prob"), "{}", d.b);
    // entries never mask a header mismatch, even when both are empty
    let ea = sample_journal(0);
    let eb = Journal::enabled(JournalHeader::new("abstract", "smt-det", 1, 10, 30));
    assert_eq!(
        ea.first_divergence(&eb).expect("headers differ").field,
        "header"
    );
}

#[test]
fn empty_versus_nonempty_is_a_length_divergence_at_zero() {
    let empty = sample_journal(0);
    let full = sample_journal(4);
    assert!(empty.first_divergence(&empty).is_none());
    let d = empty.first_divergence(&full).expect("length divergence");
    assert_eq!((d.index, d.field.as_str()), (0, "length"), "{d:?}");
    assert!(d.a.contains("0 entries"), "{}", d.a);
    // the extra entry's coordinates are surfaced from the longer journal
    assert_eq!(d.round, 1);
    let rev = full.first_divergence(&empty).expect("length divergence");
    assert_eq!((rev.index, rev.field.as_str()), (0, "length"));
}

/// One journaled abstract-VDS trial, the shape every campaign uses: run
/// with a private recorder, merge the registry, adopt the journal under
/// the trial's lane.
fn abstract_trial(i: u64, seed: u64, rounds: u64, rec: &mut Recorder) -> TrialResult {
    let cfg = AbstractConfig::new(Params::paper_default(), Scheme::SmtProbabilistic);
    let mut run_rec = Recorder::new();
    if let Some(h) = rec.journal().header() {
        run_rec.enable_journal(h.clone());
    }
    let (report, run_rec) = run_with_recorder(
        &cfg,
        FaultModel::PerRound { q: 0.08 },
        rounds,
        seed.wrapping_add(i.wrapping_mul(0x9E37_79B9)),
        run_rec,
    );
    rec.merge_registry(run_rec.registry());
    rec.adopt_journal(run_rec.journal(), i);
    TrialResult::with_value(
        if report.shutdown {
            "shutdown"
        } else {
            "survived"
        },
        report.detections as f64,
    )
}
