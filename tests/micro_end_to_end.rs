//! End-to-end tests of the micro platform: diversified programs on the
//! cycle-level SMT machine, through the whole detection/vote/roll-forward
//! protocol, audited against the pure-Rust oracle.

use vds::core::micro_vds::{run_micro, run_micro_with_state, MicroConfig, MicroFault};
use vds::core::{workload, Scheme, Victim};
use vds::fault::model::{FaultKind, FaultSite};

fn audit_state(committed: u64, img: &[u32]) {
    let (_, want) = workload::oracle(committed as u32);
    assert_eq!(img[workload::ADDR_ROUND as usize], committed as u32);
    assert_eq!(
        &img[workload::ADDR_STATE as usize
            ..(workload::ADDR_STATE + workload::STATE_WORDS) as usize],
        &want[..],
        "final state diverges from oracle"
    );
}

#[test]
fn all_schemes_survive_a_state_corruption_with_correct_output() {
    let fault = MicroFault {
        at_round: 5,
        victim: Victim::V1,
        kind: FaultKind::Transient(FaultSite::Memory { addr: 3, bit: 21 }),
    };
    for scheme in [
        Scheme::Conventional,
        Scheme::SmtDeterministic,
        Scheme::SmtProbabilistic,
        Scheme::SmtPredictive,
    ] {
        let cfg = MicroConfig::new(scheme, 8);
        let (r, img) = run_micro_with_state(&cfg, Some(fault), 20);
        assert_eq!(r.committed_rounds, 20, "{scheme:?}");
        assert_eq!(r.detections, 1, "{scheme:?}");
        audit_state(r.committed_rounds, &img);
    }
}

#[test]
fn fault_at_every_round_of_the_interval_recovers() {
    // sweep the fault position i = 1..=s — exercises early, middle and
    // checkpoint-boundary recoveries including the roll-forward clamp
    let s = 6;
    for i in 1..=s {
        let cfg = MicroConfig::new(Scheme::SmtProbabilistic, s);
        let fault = MicroFault {
            at_round: i,
            victim: Victim::V2,
            kind: FaultKind::Transient(FaultSite::Memory { addr: 6, bit: 2 }),
        };
        let (r, img) = run_micro_with_state(&cfg, Some(fault), 14);
        assert_eq!(r.committed_rounds, 14, "i={i}");
        assert_eq!(r.recoveries_ok, 1, "i={i}: {r}");
        audit_state(r.committed_rounds, &img);
    }
}

#[test]
fn corrupted_round_counter_is_caught() {
    // flipping the round counter itself (addr 0) makes the two versions'
    // windows disagree — the comparison covers bookkeeping too
    let cfg = MicroConfig::new(Scheme::SmtDeterministic, 10);
    let fault = MicroFault {
        at_round: 4,
        victim: Victim::V1,
        kind: FaultKind::Transient(FaultSite::Memory { addr: 0, bit: 0 }),
    };
    let (r, img) = run_micro_with_state(&cfg, Some(fault), 15);
    assert_eq!(r.detections, 1);
    audit_state(r.committed_rounds, &img);
}

#[test]
fn crash_faults_recover_via_trap_evidence() {
    for scheme in [Scheme::Conventional, Scheme::SmtProbabilistic] {
        let cfg = MicroConfig::new(scheme, 10);
        let fault = MicroFault {
            at_round: 7,
            victim: Victim::V1,
            kind: FaultKind::CrashVersion,
        };
        let (r, img) = run_micro_with_state(&cfg, Some(fault), 18);
        assert_eq!(r.committed_rounds, 18, "{scheme:?}");
        assert!(r.detections >= 1, "{scheme:?}");
        audit_state(r.committed_rounds, &img);
    }
}

#[test]
fn smt_beats_conventional_on_cycles_fault_free() {
    let smt = run_micro(&MicroConfig::new(Scheme::SmtProbabilistic, 10), None, 40);
    let conv = run_micro(&MicroConfig::new(Scheme::Conventional, 10), None, 40);
    let gain = conv.total_time / smt.total_time;
    assert!(gain > 1.15, "measured micro gain {gain}");
}

#[test]
fn smt_beats_conventional_on_cycles_with_fault() {
    let fault = MicroFault {
        at_round: 6,
        victim: Victim::V2,
        kind: FaultKind::Transient(FaultSite::Memory { addr: 5, bit: 9 }),
    };
    let mut smt_cfg = MicroConfig::new(Scheme::SmtDeterministic, 10);
    smt_cfg.p_correct = 0.5;
    let smt = run_micro(&smt_cfg, Some(fault), 40);
    let conv = run_micro(&MicroConfig::new(Scheme::Conventional, 10), Some(fault), 40);
    assert!(
        smt.total_time < conv.total_time,
        "smt {} vs conv {}",
        smt.total_time,
        conv.total_time
    );
}

#[test]
fn diversity_off_still_handles_transients() {
    // identical versions detect *transient* faults fine (they corrupt
    // only one copy); diversity matters for permanent faults
    let mut cfg = MicroConfig::new(Scheme::SmtProbabilistic, 8);
    cfg.diversity = false;
    let fault = MicroFault {
        at_round: 3,
        victim: Victim::V2,
        kind: FaultKind::Transient(FaultSite::Memory { addr: 4, bit: 4 }),
    };
    let (r, img) = run_micro_with_state(&cfg, Some(fault), 16);
    assert_eq!(r.detections, 1);
    audit_state(r.committed_rounds, &img);
}

#[test]
fn workload_scales_with_round_count() {
    // more target rounds, same per-round cost (no leaks / runaway state)
    let cfg = MicroConfig::new(Scheme::SmtProbabilistic, 10);
    let r20 = run_micro(&cfg, None, 20);
    let r60 = run_micro(&cfg, None, 60);
    let per20 = r20.total_time / 20.0;
    let per60 = r60.total_time / 60.0;
    assert!((per20 - per60).abs() / per20 < 0.15, "{per20} vs {per60}");
}
