//! Property-based tests (proptest) over the core data structures and
//! invariants of the workspace.

use proptest::prelude::*;
use vds::analytic::{predictive, rollforward, timing, Params};
use vds::checkpoint::digest::digest_words;
use vds::desim::stats::OnlineStats;
use vds::smtsim::encode::{decode, encode, DecodeError};
use vds::smtsim::isa::{AluImmOp, AluOp, BranchCond, Instr, MulOp, Reg};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg)
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Yield),
        Just(Instr::Halt),
        (arb_reg(), any::<u16>()).prop_map(|(rd, imm)| Instr::Lui { rd, imm }),
        (0usize..10, arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs1, rs2)| {
            Instr::Alu {
                op: AluOp::ALL[op],
                rd,
                rs1,
                rs2,
            }
        }),
        (0usize..7, arb_reg(), arb_reg(), -32768i32..=32767).prop_map(|(op, rd, rs1, imm)| {
            let op = AluImmOp::ALL[op];
            let imm = if matches!(op, AluImmOp::Slli | AluImmOp::Srli) {
                imm & 31 // the assembler (rightly) rejects wild shifts
            } else if op.zero_extends() {
                imm & 0xFFFF
            } else {
                imm
            };
            Instr::AluImm { op, rd, rs1, imm }
        }),
        (0usize..3, arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs1, rs2)| {
            Instr::Mul {
                op: [MulOp::Mul, MulOp::Div, MulOp::Rem][op],
                rd,
                rs1,
                rs2,
            }
        }),
        (arb_reg(), arb_reg(), -32768i32..=32767).prop_map(|(rd, rs1, imm)| Instr::Ld {
            rd,
            rs1,
            imm
        }),
        (arb_reg(), arb_reg(), -32768i32..=32767).prop_map(|(rs2, rs1, imm)| Instr::St {
            rs2,
            rs1,
            imm
        }),
        (0usize..4, arb_reg(), arb_reg(), 0u32..(1 << 14)).prop_map(|(c, rs1, rs2, target)| {
            Instr::Branch {
                cond: [
                    BranchCond::Eq,
                    BranchCond::Ne,
                    BranchCond::Lt,
                    BranchCond::Ge,
                ][c],
                rs1,
                rs2,
                target,
            }
        }),
        (arb_reg(), 0u32..(1 << 22)).prop_map(|(rd, target)| Instr::Jal { rd, target }),
        (arb_reg(), arb_reg(), -32768i32..=32767).prop_map(|(rd, rs1, imm)| Instr::Jalr {
            rd,
            rs1,
            imm
        }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrips(instr in arb_instr()) {
        let word = encode(&instr);
        prop_assert_eq!(decode(word), Ok(instr));
    }

    #[test]
    fn single_bitflips_never_silent(instr in arb_instr(), bit in 0u32..32) {
        let word = encode(&instr);
        let flipped = word ^ (1 << bit);
        match decode(flipped) {
            Ok(other) => prop_assert_ne!(other, instr),
            Err(DecodeError::BadOpcode(_)) | Err(DecodeError::BadField) => {}
        }
    }

    #[test]
    fn digest_collision_free_on_single_flips(
        words in proptest::collection::vec(any::<u32>(), 1..64),
        idx in any::<prop::sample::Index>(),
        bit in 0u32..32,
    ) {
        let d0 = digest_words(&words);
        let mut mutated = words.clone();
        let i = idx.index(mutated.len());
        mutated[i] ^= 1 << bit;
        prop_assert_ne!(digest_words(&mutated), d0);
    }

    #[test]
    fn digest_deterministic(words in proptest::collection::vec(any::<u32>(), 0..64)) {
        prop_assert_eq!(digest_words(&words), digest_words(&words));
    }

    #[test]
    fn online_stats_merge_associative(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..50),
        ys in proptest::collection::vec(-1e6f64..1e6, 1..50),
    ) {
        let mut merged = OnlineStats::from_iter(xs.iter().copied());
        merged.merge(&OnlineStats::from_iter(ys.iter().copied()));
        let whole = OnlineStats::from_iter(xs.iter().chain(&ys).copied());
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert!((merged.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((merged.variance() - whole.variance()).abs()
            < 1e-6 * (1.0 + whole.variance()));
    }

    #[test]
    fn gains_decrease_in_alpha(
        beta in 0.0f64..1.0,
        s in 2u32..60,
        pc in 0.0f64..=1.0,
    ) {
        let lo = Params::with_beta(0.55, beta, s);
        let hi = Params::with_beta(0.85, beta, s);
        prop_assert!(timing::g_round_exact(&lo) >= timing::g_round_exact(&hi));
        prop_assert!(
            predictive::gbar_corr_exact(&lo, pc) >= predictive::gbar_corr_exact(&hi, pc)
        );
        prop_assert!(rollforward::gbar_det_exact(&lo) >= rollforward::gbar_det_exact(&hi));
    }

    #[test]
    fn gains_increase_in_p(
        alpha in 0.5f64..=1.0,
        beta in 0.0f64..1.0,
        s in 2u32..60,
    ) {
        let p = Params::with_beta(alpha, beta, s);
        let mut last = 0.0f64;
        for k in 0..=4 {
            let pc = f64::from(k) / 4.0;
            let g = predictive::gbar_corr_exact(&p, pc);
            prop_assert!(g >= last - 1e-12);
            last = g;
        }
    }

    #[test]
    fn hit_gain_dominates_miss_everywhere(
        alpha in 0.5f64..=1.0,
        beta in 0.0f64..1.0,
        s in 2u32..40,
    ) {
        let p = Params::with_beta(alpha, beta, s);
        for i in 1..=s {
            prop_assert!(
                predictive::g_hit_exact(&p, i) >= predictive::l_miss_exact(&p, i) - 1e-12
            );
        }
    }

    #[test]
    fn abstract_engine_always_completes_and_conserves(
        q in 0.0f64..0.15,
        s in 2u32..40,
        alpha in 0.5f64..=1.0,
        seed in any::<u64>(),
    ) {
        use vds::core::abstract_vds::{run, AbstractConfig};
        use vds::core::{FaultModel, Scheme};
        let params = Params::with_beta(alpha, 0.1, s);
        let cfg = AbstractConfig::new(params, Scheme::SmtProbabilistic);
        let target = 300;
        let r = run(&cfg, FaultModel::PerRound { q }, target, seed);
        prop_assert!(r.shutdown || r.committed_rounds >= target);
        prop_assert!(r.total_time > 0.0);
        // accounting identity: the three phase clocks cover total time
        let sum = r.time_normal + r.time_recovery + r.time_checkpoint;
        prop_assert!((sum - r.total_time).abs() < 1e-6 * r.total_time.max(1.0));
        // vote outcomes partition detections
        prop_assert_eq!(r.detections, r.recoveries_ok + r.rollbacks);
        // roll-forward outcomes never exceed successful recoveries
        prop_assert!(
            r.rollforward_hits + r.rollforward_misses + r.rollforward_discards
                <= r.recoveries_ok
        );
    }

    #[test]
    fn assembler_disassembler_roundtrip(instrs in proptest::collection::vec(arb_instr(), 1..30)) {
        use vds::smtsim::disasm::to_source;
        use vds::smtsim::asm::assemble;
        use vds::smtsim::program::Program;
        // restrict control flow targets to the program length so the
        // source re-assembles cleanly
        let len = instrs.len() as u32;
        let fixed: Vec<Instr> = instrs
            .into_iter()
            .map(|i| match i {
                Instr::Branch { cond, rs1, rs2, target } => Instr::Branch {
                    cond, rs1, rs2, target: target % len,
                },
                Instr::Jal { rd, target } => Instr::Jal { rd, target: target % len },
                other => other,
            })
            .collect();
        let prog = Program::from_instrs(&fixed);
        let src = to_source(&prog);
        let back = assemble(&src).unwrap();
        prop_assert_eq!(prog.text, back.text);
    }
}

// ---- observability: the span layer's export invariants ----

/// One step of a free-form recorder workload: open a span, close some
/// open span, emit an event, or record a completed span directly.
#[derive(Debug, Clone)]
enum ObsOp {
    Begin {
        comp: u8,
        name: u8,
        tid: u8,
        at: u16,
    },
    End {
        pick: u8,
        at: u16,
    },
    Event {
        at: u16,
    },
    Push {
        comp: u8,
        name: u8,
        tid: u8,
        begin: u16,
        len: u16,
    },
}

const OBS_COMPONENTS: [&str; 3] = ["alpha", "beta", "gamma"];
const OBS_NAMES: [&str; 4] = ["round", "compute", "compare", "recovery"];

fn arb_obs_op() -> impl Strategy<Value = ObsOp> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), 0u8..3, any::<u16>()).prop_map(|(comp, name, tid, at)| {
            ObsOp::Begin {
                comp,
                name,
                tid,
                at,
            }
        }),
        (any::<u8>(), any::<u16>()).prop_map(|(pick, at)| ObsOp::End { pick, at }),
        any::<u16>().prop_map(|at| ObsOp::Event { at }),
        (any::<u8>(), any::<u8>(), 0u8..3, any::<u16>(), any::<u16>()).prop_map(
            |(comp, name, tid, begin, len)| ObsOp::Push {
                comp,
                name,
                tid,
                begin,
                len
            }
        ),
    ]
}

/// Replay a workload into a fresh recorder.
fn replay_obs(ops: &[ObsOp]) -> vds::obs::Recorder {
    let mut rec = vds::obs::Recorder::with_trace_capacity(64);
    let mut open: Vec<vds::obs::SpanGuard> = Vec::new();
    for op in ops {
        match op {
            ObsOp::Begin {
                comp,
                name,
                tid,
                at,
            } => {
                let comp = OBS_COMPONENTS[*comp as usize % OBS_COMPONENTS.len()];
                let name = OBS_NAMES[*name as usize % OBS_NAMES.len()];
                open.push(rec.span_on(u32::from(*tid), comp, name, f64::from(*at)));
            }
            ObsOp::End { pick, at } => {
                if !open.is_empty() {
                    let g = open.remove(*pick as usize % open.len());
                    rec.end_span_with(g, f64::from(*at), vec![("at", u64::from(*at).into())]);
                }
            }
            ObsOp::Event { at } => rec.event(f64::from(*at), "alpha", "tick", vec![]),
            ObsOp::Push {
                comp,
                name,
                tid,
                begin,
                len,
            } => {
                rec.record_span(vds::obs::SpanRecord {
                    begin: f64::from(*begin),
                    end: f64::from(*begin) + f64::from(*len),
                    component: OBS_COMPONENTS[*comp as usize % OBS_COMPONENTS.len()],
                    name: OBS_NAMES[*name as usize % OBS_NAMES.len()],
                    tid: u32::from(*tid),
                    fields: vec![],
                });
            }
        }
    }
    rec
}

/// Assert the Chrome trace JSON is well nested: every `"E"` closes the
/// innermost open `"B"` and timestamps are non-decreasing per
/// `(pid, tid)` lane.
fn assert_chrome_well_nested(json: &str) {
    let field = |line: &str, key: &str| -> Option<String> {
        let pat = format!("\"{key}\":");
        let at = line.find(&pat)? + pat.len();
        let rest = &line[at..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim_matches('"').to_string())
    };
    let mut stacks: std::collections::BTreeMap<(String, String), Vec<String>> = Default::default();
    let mut last_ts: std::collections::BTreeMap<(String, String), f64> = Default::default();
    for line in json.lines() {
        let Some(ph) = field(line, "ph") else {
            continue;
        };
        if ph != "B" && ph != "E" {
            continue;
        }
        let key = (
            field(line, "pid").expect("pid"),
            field(line, "tid").expect("tid"),
        );
        let ts: f64 = field(line, "ts").expect("ts").parse().expect("numeric ts");
        let name = field(line, "name").expect("name");
        let prev = last_ts.entry(key.clone()).or_insert(f64::NEG_INFINITY);
        prop_assert!(ts >= *prev, "timestamps regress on {key:?}: {line}");
        *prev = ts;
        let stack = stacks.entry(key).or_default();
        if ph == "B" {
            stack.push(name);
        } else {
            let open = stack.pop();
            prop_assert_eq!(open.as_deref(), Some(name.as_str()), "E without matching B");
        }
    }
    for (k, s) in stacks {
        prop_assert!(s.is_empty(), "unclosed spans on {k:?}: {s:?}");
    }
}

proptest! {
    // Any sequence of span/event calls exports a well-nested Chrome
    // trace, and export bytes are identical across two identical runs.
    #[test]
    fn span_exports_are_well_nested_and_deterministic(
        ops in proptest::collection::vec(arb_obs_op(), 0..60),
    ) {
        let rec = replay_obs(&ops);
        let json = rec.spans().to_chrome_json();
        assert_chrome_well_nested(&json);
        // byte-determinism: an identical replay exports identical bytes
        let rec2 = replay_obs(&ops);
        prop_assert_eq!(&json, &rec2.spans().to_chrome_json());
        prop_assert_eq!(rec.spans().to_folded(), rec2.spans().to_folded());
        prop_assert_eq!(rec.trace().to_jsonl(), rec2.trace().to_jsonl());
    }

    // Campaign span/metric exports are byte-identical across --workers 1
    // and --workers 4, and stay well nested after shard merging.
    #[test]
    fn campaign_exports_are_worker_invariant(trials in 1u64..80, salt in any::<u64>()) {
        use vds::fault::campaign::{run_campaign_recorded, TrialResult};
        let trial = |i: u64, rec: &mut vds::obs::Recorder| {
            rec.bump("trials");
            TrialResult::with_value("lat", ((i ^ salt) % 97) as f64)
        };
        let (ra, reca) = run_campaign_recorded(trials, 1, trial);
        let (rb, recb) = run_campaign_recorded(trials, 4, trial);
        prop_assert_eq!(ra.trials, rb.trials);
        let json = reca.spans().to_chrome_json();
        assert_chrome_well_nested(&json);
        prop_assert_eq!(&json, &recb.spans().to_chrome_json());
        prop_assert_eq!(reca.registry().to_csv(), recb.registry().to_csv());
        prop_assert_eq!(reca.spans().to_folded(), recb.spans().to_folded());
    }
}
