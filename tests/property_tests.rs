//! Property-based tests (proptest) over the core data structures and
//! invariants of the workspace.

use proptest::prelude::*;
use vds::analytic::{predictive, rollforward, timing, Params};
use vds::checkpoint::digest::digest_words;
use vds::desim::stats::OnlineStats;
use vds::smtsim::encode::{decode, encode, DecodeError};
use vds::smtsim::isa::{AluImmOp, AluOp, BranchCond, Instr, MulOp, Reg};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg)
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Yield),
        Just(Instr::Halt),
        (arb_reg(), any::<u16>()).prop_map(|(rd, imm)| Instr::Lui { rd, imm }),
        (0usize..10, arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs1, rs2)| {
            Instr::Alu {
                op: AluOp::ALL[op],
                rd,
                rs1,
                rs2,
            }
        }),
        (0usize..7, arb_reg(), arb_reg(), -32768i32..=32767).prop_map(|(op, rd, rs1, imm)| {
            let op = AluImmOp::ALL[op];
            let imm = if matches!(op, AluImmOp::Slli | AluImmOp::Srli) {
                imm & 31 // the assembler (rightly) rejects wild shifts
            } else if op.zero_extends() {
                imm & 0xFFFF
            } else {
                imm
            };
            Instr::AluImm { op, rd, rs1, imm }
        }),
        (0usize..3, arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs1, rs2)| {
            Instr::Mul {
                op: [MulOp::Mul, MulOp::Div, MulOp::Rem][op],
                rd,
                rs1,
                rs2,
            }
        }),
        (arb_reg(), arb_reg(), -32768i32..=32767).prop_map(|(rd, rs1, imm)| Instr::Ld {
            rd,
            rs1,
            imm
        }),
        (arb_reg(), arb_reg(), -32768i32..=32767).prop_map(|(rs2, rs1, imm)| Instr::St {
            rs2,
            rs1,
            imm
        }),
        (0usize..4, arb_reg(), arb_reg(), 0u32..(1 << 14)).prop_map(|(c, rs1, rs2, target)| {
            Instr::Branch {
                cond: [
                    BranchCond::Eq,
                    BranchCond::Ne,
                    BranchCond::Lt,
                    BranchCond::Ge,
                ][c],
                rs1,
                rs2,
                target,
            }
        }),
        (arb_reg(), 0u32..(1 << 22)).prop_map(|(rd, target)| Instr::Jal { rd, target }),
        (arb_reg(), arb_reg(), -32768i32..=32767).prop_map(|(rd, rs1, imm)| Instr::Jalr {
            rd,
            rs1,
            imm
        }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrips(instr in arb_instr()) {
        let word = encode(&instr);
        prop_assert_eq!(decode(word), Ok(instr));
    }

    #[test]
    fn single_bitflips_never_silent(instr in arb_instr(), bit in 0u32..32) {
        let word = encode(&instr);
        let flipped = word ^ (1 << bit);
        match decode(flipped) {
            Ok(other) => prop_assert_ne!(other, instr),
            Err(DecodeError::BadOpcode(_)) | Err(DecodeError::BadField) => {}
        }
    }

    #[test]
    fn digest_collision_free_on_single_flips(
        words in proptest::collection::vec(any::<u32>(), 1..64),
        idx in any::<prop::sample::Index>(),
        bit in 0u32..32,
    ) {
        let d0 = digest_words(&words);
        let mut mutated = words.clone();
        let i = idx.index(mutated.len());
        mutated[i] ^= 1 << bit;
        prop_assert_ne!(digest_words(&mutated), d0);
    }

    #[test]
    fn digest_deterministic(words in proptest::collection::vec(any::<u32>(), 0..64)) {
        prop_assert_eq!(digest_words(&words), digest_words(&words));
    }

    #[test]
    fn online_stats_merge_associative(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..50),
        ys in proptest::collection::vec(-1e6f64..1e6, 1..50),
    ) {
        let mut merged = OnlineStats::from_iter(xs.iter().copied());
        merged.merge(&OnlineStats::from_iter(ys.iter().copied()));
        let whole = OnlineStats::from_iter(xs.iter().chain(&ys).copied());
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert!((merged.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((merged.variance() - whole.variance()).abs()
            < 1e-6 * (1.0 + whole.variance()));
    }

    #[test]
    fn gains_decrease_in_alpha(
        beta in 0.0f64..1.0,
        s in 2u32..60,
        pc in 0.0f64..=1.0,
    ) {
        let lo = Params::with_beta(0.55, beta, s);
        let hi = Params::with_beta(0.85, beta, s);
        prop_assert!(timing::g_round_exact(&lo) >= timing::g_round_exact(&hi));
        prop_assert!(
            predictive::gbar_corr_exact(&lo, pc) >= predictive::gbar_corr_exact(&hi, pc)
        );
        prop_assert!(rollforward::gbar_det_exact(&lo) >= rollforward::gbar_det_exact(&hi));
    }

    #[test]
    fn gains_increase_in_p(
        alpha in 0.5f64..=1.0,
        beta in 0.0f64..1.0,
        s in 2u32..60,
    ) {
        let p = Params::with_beta(alpha, beta, s);
        let mut last = 0.0f64;
        for k in 0..=4 {
            let pc = f64::from(k) / 4.0;
            let g = predictive::gbar_corr_exact(&p, pc);
            prop_assert!(g >= last - 1e-12);
            last = g;
        }
    }

    #[test]
    fn hit_gain_dominates_miss_everywhere(
        alpha in 0.5f64..=1.0,
        beta in 0.0f64..1.0,
        s in 2u32..40,
    ) {
        let p = Params::with_beta(alpha, beta, s);
        for i in 1..=s {
            prop_assert!(
                predictive::g_hit_exact(&p, i) >= predictive::l_miss_exact(&p, i) - 1e-12
            );
        }
    }

    #[test]
    fn abstract_engine_always_completes_and_conserves(
        q in 0.0f64..0.15,
        s in 2u32..40,
        alpha in 0.5f64..=1.0,
        seed in any::<u64>(),
    ) {
        use vds::core::abstract_vds::{run, AbstractConfig};
        use vds::core::{FaultModel, Scheme};
        let params = Params::with_beta(alpha, 0.1, s);
        let cfg = AbstractConfig::new(params, Scheme::SmtProbabilistic);
        let target = 300;
        let r = run(&cfg, FaultModel::PerRound { q }, target, seed);
        prop_assert!(r.shutdown || r.committed_rounds >= target);
        prop_assert!(r.total_time > 0.0);
        // accounting identity: the three phase clocks cover total time
        let sum = r.time_normal + r.time_recovery + r.time_checkpoint;
        prop_assert!((sum - r.total_time).abs() < 1e-6 * r.total_time.max(1.0));
        // vote outcomes partition detections
        prop_assert_eq!(r.detections, r.recoveries_ok + r.rollbacks);
        // roll-forward outcomes never exceed successful recoveries
        prop_assert!(
            r.rollforward_hits + r.rollforward_misses + r.rollforward_discards
                <= r.recoveries_ok
        );
    }

    #[test]
    fn assembler_disassembler_roundtrip(instrs in proptest::collection::vec(arb_instr(), 1..30)) {
        use vds::smtsim::disasm::to_source;
        use vds::smtsim::asm::assemble;
        use vds::smtsim::program::Program;
        // restrict control flow targets to the program length so the
        // source re-assembles cleanly
        let len = instrs.len() as u32;
        let fixed: Vec<Instr> = instrs
            .into_iter()
            .map(|i| match i {
                Instr::Branch { cond, rs1, rs2, target } => Instr::Branch {
                    cond, rs1, rs2, target: target % len,
                },
                Instr::Jal { rd, target } => Instr::Jal { rd, target: target % len },
                other => other,
            })
            .collect();
        let prog = Program::from_instrs(&fixed);
        let src = to_source(&prog);
        let back = assemble(&src).unwrap();
        prop_assert_eq!(prog.text, back.text);
    }
}
